#include "graph/graph_delta.h"

#include <algorithm>
#include <deque>

#include "common/binary_io.h"
#include "graph/graph_raw_access.h"

namespace gpar {

namespace {

// "GPARDLTA", little-endian — distinct from the graph/rule snapshot magics
// so a delta frame fed to the wrong codec fails on the first 8 bytes.
constexpr uint64_t kDeltaMagic = 0x41544C4452415047ull;

constexpr auto ByEdge = [](const auto& a, const auto& b) {
  if (a.src != b.src) return a.src < b.src;
  if (a.label != b.label) return a.label < b.label;
  return a.dst < b.dst;
};

// The one merge routine behind all three Patch* entry points: applies the
// (already normalized) deletes and inserts in a single pass over the
// out-CSR, then re-derives the in-CSR and label index via the shared
// assembly routine — the same code path a from-scratch rebuild takes, which
// is what makes the result bit-identical to one.
//
// Preconditions: `dels` sorted/unique with every entry present in `g`;
// `fresh` sorted/unique with no entry present in `g` *except* those also in
// `dels` (delete-then-reinsert). Both orders match the (label, other)
// adjacency sort within each source node.
Graph MergePatched(const Graph& g, const std::vector<EdgeDelete>& dels,
                   const std::vector<EdgeInsert>& fresh) {
  const NodeId n = g.num_nodes();
  const auto& old_offsets = GraphRawAccess::out_offsets(g);
  const auto& old_adj = GraphRawAccess::out_adj(g);

  Graph out;
  GraphRawAccess::labels(out) = g.labels_ptr();
  GraphRawAccess::node_labels(out) = GraphRawAccess::node_labels(g);
  auto& offsets = GraphRawAccess::out_offsets(out);
  auto& adj = GraphRawAccess::out_adj(out);
  offsets.assign(n + 1, 0);
  adj.reserve(old_adj.size() + fresh.size() - dels.size());

  size_t next_ins = 0;  // cursor into `fresh`, sorted by src
  size_t next_del = 0;  // cursor into `dels`, sorted by src
  for (NodeId v = 0; v < n; ++v) {
    size_t lo = old_offsets[v], hi = old_offsets[v + 1];
    while (lo < hi || (next_ins < fresh.size() && fresh[next_ins].src == v)) {
      // Deletes first: when the next old entry is the next delete's target,
      // drop it. This must precede the insert comparison so a
      // delete-then-reinsert of the same edge removes the old copy before
      // the (equal) insert is spliced in.
      if (lo < hi && next_del < dels.size() && dels[next_del].src == v) {
        const AdjEntry de{dels[next_del].label, dels[next_del].dst};
        if (old_adj[lo] == de) {
          ++lo;
          ++next_del;
          continue;
        }
      }
      const bool has_insert =
          next_ins < fresh.size() && fresh[next_ins].src == v;
      if (!has_insert) {
        adj.push_back(old_adj[lo++]);
      } else {
        const AdjEntry ins{fresh[next_ins].label, fresh[next_ins].dst};
        if (lo < hi && old_adj[lo] < ins) {
          adj.push_back(old_adj[lo++]);
        } else {
          adj.push_back(ins);
          ++next_ins;
        }
      }
    }
    offsets[v + 1] = adj.size();
  }
  GraphRawAccess::FinishFromOutCsr(out);
  return out;
}

Result<GraphPatch> PatchImpl(const Graph& g,
                             std::span<const EdgeInsert> inserts,
                             std::span<const EdgeDelete> deletes) {
  const NodeId n = g.num_nodes();
  // Inserts stay strict — a dangling endpoint or uninterned label is a
  // producer bug. Deletes are tolerant (see EdgeDelete): anything that
  // doesn't name a present edge lands in `missing`.
  for (const EdgeInsert& e : inserts) {
    if (e.src >= n || e.dst >= n) {
      return Status::InvalidArgument("edge insert endpoint out of range");
    }
    if (e.label >= g.labels().size()) {
      return Status::InvalidArgument("edge insert label not interned");
    }
  }

  GraphPatch patch;

  std::vector<EdgeDelete> dels(deletes.begin(), deletes.end());
  std::sort(dels.begin(), dels.end(), ByEdge);
  dels.erase(std::unique(dels.begin(), dels.end()), dels.end());
  std::erase_if(dels, [&](const EdgeDelete& e) {
    return e.src >= n || e.dst >= n || e.label >= g.labels().size() ||
           !g.HasEdge(e.src, e.label, e.dst);
  });
  patch.missing = deletes.size() - dels.size();
  patch.edges_deleted = dels.size();

  // Sort + dedup the inserts, then drop ones already present — unless that
  // same edge is being deleted in this batch, in which case the insert is a
  // genuine re-add and must survive the filter.
  std::vector<EdgeInsert> fresh(inserts.begin(), inserts.end());
  std::sort(fresh.begin(), fresh.end(), ByEdge);
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  std::erase_if(fresh, [&](const EdgeInsert& e) {
    if (!g.HasEdge(e.src, e.label, e.dst)) return false;
    const EdgeDelete d{e.src, e.label, e.dst};
    return !std::binary_search(dels.begin(), dels.end(), d, ByEdge);
  });
  patch.duplicates = inserts.size() - fresh.size();
  patch.edges_inserted = fresh.size();

  patch.graph = MergePatched(g, dels, fresh);
  patch.applied = std::move(fresh);
  patch.applied_deletes = std::move(dels);
  return patch;
}

}  // namespace

std::string GraphDelta::Serialize() const {
  std::string payload;
  PutU64(&payload, sequence);
  PutU32(&payload, static_cast<uint32_t>(inserts.size()));
  for (const EdgeInsert& e : inserts) {
    PutU32(&payload, e.src);
    PutU32(&payload, e.label);
    PutU32(&payload, e.dst);
  }
  // Pure-insert batches keep the v1 framing byte-for-byte, so pre-deletion
  // consumers (and archived v1 frames) stay interoperable in both
  // directions; batches that delete need v2, and only frames that carry
  // their own label dictionary (the journaled/shipped ones) pay for v3.
  const uint32_t version = !label_defs.empty() ? kFormatVersionV3
                           : deletes.empty()   ? kFormatVersion
                                               : kFormatVersionV2;
  if (version >= kFormatVersionV2) {
    PutU32(&payload, static_cast<uint32_t>(deletes.size()));
    for (const EdgeDelete& e : deletes) {
      PutU32(&payload, e.src);
      PutU32(&payload, e.label);
      PutU32(&payload, e.dst);
    }
  }
  if (version >= kFormatVersionV3) {
    PutU32(&payload, static_cast<uint32_t>(label_defs.size()));
    for (const LabelDef& def : label_defs) {
      PutU32(&payload, def.id);
      PutString(&payload, def.name);
    }
  }
  std::string out;
  PutU64(&out, kDeltaMagic);
  PutU32(&out, version);
  PutU64(&out, payload.size());
  PutU64(&out, Fnv1a64(payload));
  out += payload;
  return out;
}

Result<size_t> GraphDelta::FrameSize(std::string_view bytes) {
  ByteReader r(bytes);
  uint64_t magic, payload_size;
  uint32_t version;
  if (!r.ReadU64(&magic) || !r.ReadU32(&version) ||
      !r.ReadU64(&payload_size)) {
    return Status::Corruption("graph delta: truncated header");
  }
  if (magic != kDeltaMagic) {
    return Status::Corruption("graph delta: bad magic");
  }
  if (version < kFormatVersion || version > kFormatVersionV3) {
    return Status::Corruption("graph delta: unsupported version " +
                              std::to_string(version));
  }
  return static_cast<size_t>(kFrameHeaderBytes + payload_size);
}

Result<GraphDelta> GraphDelta::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  uint64_t magic, payload_size, checksum;
  uint32_t version;
  if (!r.ReadU64(&magic) || !r.ReadU32(&version) || !r.ReadU64(&payload_size) ||
      !r.ReadU64(&checksum)) {
    return Status::Corruption("graph delta: truncated header");
  }
  if (magic != kDeltaMagic) {
    return Status::Corruption("graph delta: bad magic");
  }
  if (version < kFormatVersion || version > kFormatVersionV3) {
    return Status::Corruption("graph delta: unsupported version " +
                              std::to_string(version));
  }
  if (payload_size != r.remaining()) {
    return Status::Corruption("graph delta: payload size mismatch");
  }
  const std::string_view payload = bytes.substr(bytes.size() - r.remaining());
  if (Fnv1a64(payload) != checksum) {
    return Status::Corruption("graph delta: checksum mismatch");
  }
  GraphDelta delta;
  uint32_t count;
  if (!r.ReadU64(&delta.sequence) || !r.ReadU32(&count)) {
    return Status::Corruption("graph delta: truncated payload");
  }
  // Reserve bounded by the bytes actually present, so a corrupt count field
  // can't drive a huge allocation before the loop fails on the first read.
  delta.inserts.reserve(std::min<size_t>(count, r.remaining() / 12));
  for (uint32_t i = 0; i < count; ++i) {
    EdgeInsert e;
    if (!r.ReadU32(&e.src) || !r.ReadU32(&e.label) || !r.ReadU32(&e.dst)) {
      return Status::Corruption("graph delta: truncated payload");
    }
    delta.inserts.push_back(e);
  }
  if (version >= kFormatVersionV2) {
    if (!r.ReadU32(&count)) {
      return Status::Corruption("graph delta: truncated payload");
    }
    delta.deletes.reserve(std::min<size_t>(count, r.remaining() / 12));
    for (uint32_t i = 0; i < count; ++i) {
      EdgeDelete e;
      if (!r.ReadU32(&e.src) || !r.ReadU32(&e.label) || !r.ReadU32(&e.dst)) {
        return Status::Corruption("graph delta: truncated payload");
      }
      delta.deletes.push_back(e);
    }
  }
  if (version >= kFormatVersionV3) {
    if (!r.ReadU32(&count)) {
      return Status::Corruption("graph delta: truncated payload");
    }
    delta.label_defs.reserve(std::min<size_t>(count, r.remaining() / 8));
    for (uint32_t i = 0; i < count; ++i) {
      LabelDef def;
      if (!r.ReadU32(&def.id) || !r.ReadString(&def.name)) {
        return Status::Corruption("graph delta: truncated payload");
      }
      delta.label_defs.push_back(std::move(def));
    }
  }
  if (!r.exhausted()) {
    return Status::Corruption("graph delta: trailing bytes");
  }
  return delta;
}

void CollectLabelDefs(const Interner& labels, GraphDelta* delta) {
  std::vector<LabelId> ids;
  ids.reserve(delta->inserts.size() + delta->deletes.size());
  for (const EdgeInsert& e : delta->inserts) ids.push_back(e.label);
  for (const EdgeDelete& e : delta->deletes) ids.push_back(e.label);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  delta->label_defs.clear();
  delta->label_defs.reserve(ids.size());
  for (LabelId id : ids) {
    // An id the dictionary does not know cannot be named; leave it out —
    // `PatchGraph` rejects the edge that references it anyway.
    if (id >= labels.size()) continue;
    delta->label_defs.push_back({id, labels.Name(id)});
  }
}

Status ApplyLabelDefs(const GraphDelta& delta, Interner* labels) {
  for (const LabelDef& def : delta.label_defs) {
    if (def.id < labels->size()) {
      if (labels->Name(def.id) != def.name) {
        return Status::Corruption("label def mismatch: id " +
                                  std::to_string(def.id) + " is \"" +
                                  labels->Name(def.id) + "\", frame says \"" +
                                  def.name + "\"");
      }
      continue;
    }
    // Defs are sorted by id and frames replay in append order, so a
    // well-formed journal only ever extends the dictionary one id at a
    // time, exactly the way the live server interned it.
    if (def.id != labels->size()) {
      return Status::Corruption("label def skips ids: frame defines id " +
                                std::to_string(def.id) +
                                " but the dictionary has " +
                                std::to_string(labels->size()) + " labels");
    }
    if (labels->Intern(def.name) != def.id) {
      return Status::Corruption("label \"" + def.name +
                                "\" already interned under another id");
    }
  }
  return Status::OK();
}

Result<GraphPatch> PatchGraphWithInserts(const Graph& g,
                                         std::span<const EdgeInsert> inserts) {
  return PatchImpl(g, inserts, {});
}

Result<GraphPatch> PatchGraphWithDeletes(const Graph& g,
                                         std::span<const EdgeDelete> deletes) {
  return PatchImpl(g, {}, deletes);
}

Result<GraphPatch> PatchGraph(const Graph& g, const GraphDelta& delta) {
  return PatchImpl(g, delta.inserts, delta.deletes);
}

Result<GraphPatch> PatchGraphWithInserts(const Graph& g,
                                         const GraphDelta& delta) {
  return PatchGraph(g, delta);
}

std::vector<std::pair<NodeId, uint32_t>> NodesWithinRadiusOfAny(
    const Graph& g, std::span<const NodeId> sources, uint32_t radius) {
  std::vector<std::pair<NodeId, uint32_t>> out;
  std::vector<uint32_t> dist(g.num_nodes(), static_cast<uint32_t>(-1));
  std::deque<NodeId> frontier;
  for (NodeId s : sources) {
    if (s < g.num_nodes() && dist[s] == static_cast<uint32_t>(-1)) {
      dist[s] = 0;
      frontier.push_back(s);
      out.emplace_back(s, 0);
    }
  }
  while (!frontier.empty()) {
    NodeId v = frontier.front();
    frontier.pop_front();
    if (dist[v] == radius) continue;
    auto visit = [&](NodeId w) {
      if (dist[w] == static_cast<uint32_t>(-1)) {
        dist[w] = dist[v] + 1;
        frontier.push_back(w);
        out.emplace_back(w, dist[w]);
      }
    };
    for (const AdjEntry& e : g.out_edges(v)) visit(e.other);
    for (const AdjEntry& e : g.in_edges(v)) visit(e.other);
  }
  return out;
}

std::vector<std::pair<NodeId, uint32_t>> DeltaAffectedRegion(
    const Graph& old_g, const Graph& new_g,
    std::span<const EdgeInsert> applied,
    std::span<const EdgeDelete> applied_deletes, uint32_t radius) {
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * (applied.size() + applied_deletes.size()));
  for (const EdgeInsert& e : applied) {
    endpoints.push_back(e.src);
    endpoints.push_back(e.dst);
  }
  for (const EdgeDelete& e : applied_deletes) {
    endpoints.push_back(e.src);
    endpoints.push_back(e.dst);
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());

  auto touched = NodesWithinRadiusOfAny(new_g, endpoints, radius);
  if (!applied_deletes.empty()) {
    auto before = NodesWithinRadiusOfAny(old_g, endpoints, radius);
    touched.insert(touched.end(), before.begin(), before.end());
  }
  // Sorting pairs lexicographically keeps the minimum distance first among
  // duplicates, so the unique pass below retains it.
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end(),
                            [](const auto& a, const auto& b) {
                              return a.first == b.first;
                            }),
                touched.end());
  return touched;
}

}  // namespace gpar
