#ifndef GPAR_GRAPH_GRAPH_DELTA_H_
#define GPAR_GRAPH_GRAPH_DELTA_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace gpar {

/// One edge insertion src --label--> dst. Endpoints must already exist in
/// the graph (deltas add edges, not nodes); the label must be interned
/// through the graph's dictionary.
struct EdgeInsert {
  NodeId src;
  LabelId label;
  NodeId dst;

  friend bool operator==(const EdgeInsert&, const EdgeInsert&) = default;
};

/// A versioned batch of edge insertions — the unit mutations travel in:
/// `ServeSession::ApplyDelta` takes one, and the sharded serving router
/// ships the serialized form to its shard servers instead of full graph
/// snapshots. `sequence` orders batches from a single producer (the router
/// stamps it; standalone callers may leave it 0).
struct GraphDelta {
  static constexpr uint32_t kFormatVersion = 1;

  uint64_t sequence = 0;
  std::vector<EdgeInsert> inserts;

  /// Framed little-endian encoding (see common/binary_io): magic
  /// "GPARDLTA", u32 version, u64 payload size, u64 FNV-1a payload
  /// checksum, then the payload {u64 sequence, u32 count, count x
  /// (u32 src, u32 label, u32 dst)}.
  std::string Serialize() const;
  /// Inverse of `Serialize`; Corruption on bad magic/version/checksum or a
  /// truncated or oversized buffer.
  static Result<GraphDelta> Deserialize(std::string_view bytes);

  friend bool operator==(const GraphDelta&, const GraphDelta&) = default;
};

/// Result of `PatchGraphWithInserts`.
struct GraphPatch {
  Graph graph;                ///< the patched graph (shares the interner)
  size_t edges_inserted = 0;  ///< new edges actually added
  size_t duplicates = 0;      ///< inserts already present (or repeated)
  /// The inserts that actually changed the graph (sorted, deduplicated,
  /// pre-existing edges removed) — the set delta invalidation starts from.
  std::vector<EdgeInsert> applied;
};

/// Applies edge inserts to an immutable CSR graph, producing a new `Graph`
/// that is bit-identical to rebuilding from scratch with the extended edge
/// list (guarded by the delta tests via snapshot-byte comparison).
///
/// Cost is O(|V| + |E| + k log k) for k inserts: the inserts are sorted and
/// merged into the out-CSR in one pass — no global edge re-sort — and the
/// in-CSR and label index are re-derived by the shared assembly routine.
/// The paper's serving scenario applies small deltas to large graphs, where
/// the merge is dominated by the memcpy of the untouched adjacency.
Result<GraphPatch> PatchGraphWithInserts(const Graph& g,
                                         std::span<const EdgeInsert> inserts);

/// Typed-batch form — the primary signature; the span overload above is
/// kept for callers that assemble inserts ad hoc (tests, tooling).
Result<GraphPatch> PatchGraphWithInserts(const Graph& g,
                                         const GraphDelta& delta);

/// Distance-bounded invalidation support: for every node within undirected
/// distance `radius` of any source, its distance to the nearest source.
/// One multi-source BFS; pairs are returned in BFS order (sources first).
/// The serving layer uses this on the *patched* graph to find the cache
/// entries an edge delta can affect (locality, Section 5.1: membership of
/// v depends only on G_d(v)).
std::vector<std::pair<NodeId, uint32_t>> NodesWithinRadiusOfAny(
    const Graph& g, std::span<const NodeId> sources, uint32_t radius);

}  // namespace gpar

#endif  // GPAR_GRAPH_GRAPH_DELTA_H_
