#ifndef GPAR_GRAPH_GRAPH_DELTA_H_
#define GPAR_GRAPH_GRAPH_DELTA_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace gpar {

/// One edge insertion src --label--> dst. Endpoints must already exist in
/// the graph (deltas add edges, not nodes); the label must be interned
/// through the graph's dictionary.
struct EdgeInsert {
  NodeId src;
  LabelId label;
  NodeId dst;

  friend bool operator==(const EdgeInsert&, const EdgeInsert&) = default;
};

/// One edge deletion src --label--> dst. Unlike inserts, deletes are
/// tolerant by design: a delete naming an edge (or endpoint, or label) the
/// graph does not have is counted in `GraphPatch::missing`, not rejected —
/// CDC-style producers routinely replay cleanups against state that
/// already converged.
struct EdgeDelete {
  NodeId src;
  LabelId label;
  NodeId dst;

  friend bool operator==(const EdgeDelete&, const EdgeDelete&) = default;
};

/// One label-dictionary definition carried alongside a serialized delta:
/// the interned id and the name it stands for. Deltas reference labels by
/// id, which is only meaningful against the producer's dictionary — a
/// journal frame replayed against a freshly loaded snapshot may reference
/// labels interned live *after* that snapshot was written. Frames carry
/// their own definitions so replay can re-intern exactly the ids it needs
/// (see `ApplyLabelDefs`).
struct LabelDef {
  LabelId id;
  std::string name;

  friend bool operator==(const LabelDef&, const LabelDef&) = default;
};

/// A versioned batch of edge mutations — the unit mutations travel in:
/// `ServeSession::ApplyDelta` takes one, and the sharded serving router
/// ships the serialized form to its shard servers instead of full graph
/// snapshots. `sequence` orders batches from a single producer (the router
/// stamps it; standalone callers may leave it 0).
///
/// Within one batch, deletes apply before inserts: an edge that appears in
/// both lists ends up PRESENT in the patched graph (delete-then-reinsert),
/// and is counted on both sides of the `GraphPatch` tally.
struct GraphDelta {
  /// Insert-only wire format (PR 5/6): no `deletes` section. Still written
  /// for pure-insert batches, so pre-deletion consumers keep interoperating.
  static constexpr uint32_t kFormatVersion = 1;
  /// Mutation-stream wire format: `deletes` follow the inserts.
  static constexpr uint32_t kFormatVersionV2 = 2;
  /// Durable wire format: a `label_defs` section follows the deletes, so a
  /// journaled frame is self-describing — replay against a snapshot older
  /// than the frame re-interns the label names the frame minted.
  static constexpr uint32_t kFormatVersionV3 = 3;

  uint64_t sequence = 0;
  std::vector<EdgeInsert> inserts;
  std::vector<EdgeDelete> deletes;
  /// Definitions for every distinct label the edges reference (sorted by
  /// id). Empty for in-process deltas; the servers fill it at journal and
  /// ship time via `CollectLabelDefs`.
  std::vector<LabelDef> label_defs;

  /// Framed little-endian encoding (see common/binary_io): magic
  /// "GPARDLTA", u32 version, u64 payload size, u64 FNV-1a payload
  /// checksum, then the payload {u64 sequence, u32 insert_count,
  /// insert_count x (u32 src, u32 label, u32 dst)}, — version >= 2 —
  /// {u32 delete_count, delete_count x (u32 src, u32 label, u32 dst)},
  /// and — version 3 — {u32 def_count, def_count x (u32 id, u32 name_len,
  /// name bytes)}. The writer picks the lowest version that can carry the
  /// batch: no deletes and no defs -> 1 (byte-identical to the PR 6
  /// encoding), deletes but no defs -> 2, any defs -> 3.
  std::string Serialize() const;
  /// Inverse of `Serialize`; accepts all three wire versions. Corruption
  /// on bad magic/version/checksum or a truncated or oversized buffer.
  static Result<GraphDelta> Deserialize(std::string_view bytes);

  /// Serialized frame header length (magic + version + payload size +
  /// checksum) — frames are self-delimiting, which is what lets the delta
  /// journal detect a torn tail without a separate length index.
  static constexpr size_t kFrameHeaderBytes = 8 + 4 + 8 + 8;
  /// Total on-disk frame length (header + payload) declared by the header
  /// at the start of `bytes`. Validates magic and version only — the
  /// payload need not be present (or intact) yet; `bytes` may extend past
  /// the frame. Corruption when even the header is truncated or foreign.
  static Result<size_t> FrameSize(std::string_view bytes);

  friend bool operator==(const GraphDelta&, const GraphDelta&) = default;
};

/// Result of patching a graph with a mutation batch.
struct GraphPatch {
  Graph graph;                ///< the patched graph (shares the interner)
  size_t edges_inserted = 0;  ///< new edges actually added
  size_t duplicates = 0;      ///< inserts already present (or repeated)
  size_t edges_deleted = 0;   ///< edges actually removed
  size_t missing = 0;  ///< deletes of absent/out-of-range edges (or repeated)
  /// The inserts that actually changed the graph (sorted, deduplicated,
  /// pre-existing edges removed) — the set delta invalidation starts from.
  std::vector<EdgeInsert> applied;
  /// The deletes that actually removed an edge (sorted, deduplicated) —
  /// the other half of the invalidation frontier.
  std::vector<EdgeDelete> applied_deletes;
};

/// Fills `delta->label_defs` with a definition for every distinct label id
/// its edges reference (sorted by id), named from `labels`. The servers
/// call this right before serializing a frame for the journal or the shard
/// wire, which is what makes those frames replayable against an older
/// snapshot. Ids the dictionary does not know are skipped — `PatchGraph`
/// rejects such a delta anyway.
void CollectLabelDefs(const Interner& labels, GraphDelta* delta);

/// Replays `delta.label_defs` into `labels`: a def naming the next unseen
/// id is interned, a def for an existing id must match its name, and
/// anything out of order (an id past the end, a name already interned
/// under a different id) is `Corruption` — journal frames replay in append
/// order, so a well-formed journal only ever extends the dictionary the
/// way the live server did. Safe to call with defs the dictionary already
/// has (the live shard-wire path): those verify and no-op.
Status ApplyLabelDefs(const GraphDelta& delta, Interner* labels);

/// Applies edge inserts to an immutable CSR graph, producing a new `Graph`
/// that is bit-identical to rebuilding from scratch with the extended edge
/// list (guarded by the delta tests via snapshot-byte comparison).
///
/// Cost is O(|V| + |E| + k log k) for k inserts: the inserts are sorted and
/// merged into the out-CSR in one pass — no global edge re-sort — and the
/// in-CSR and label index are re-derived by the shared assembly routine.
/// The paper's serving scenario applies small deltas to large graphs, where
/// the merge is dominated by the memcpy of the untouched adjacency.
Result<GraphPatch> PatchGraphWithInserts(const Graph& g,
                                         std::span<const EdgeInsert> inserts);

/// Deletion counterpart: removes the named edges in the same single merge
/// pass, bit-identical to a from-scratch rebuild from the shrunken edge
/// list. Deletes of absent edges (including out-of-range endpoints or
/// uninterned labels) are counted in `GraphPatch::missing`, never fatal.
Result<GraphPatch> PatchGraphWithDeletes(const Graph& g,
                                         std::span<const EdgeDelete> deletes);

/// The unified mutation entry point — applies `delta.deletes` then
/// `delta.inserts` in ONE merge pass over the CSR, bit-identical to a
/// from-scratch rebuild from the final edge list
/// (old edges \ deletes) ∪ inserts.
Result<GraphPatch> PatchGraph(const Graph& g, const GraphDelta& delta);

/// Typed-batch insert form — kept for PR 5/6 callers; equivalent to
/// `PatchGraph` when `delta.deletes` is empty.
Result<GraphPatch> PatchGraphWithInserts(const Graph& g,
                                         const GraphDelta& delta);

/// Distance-bounded invalidation support: for every node within undirected
/// distance `radius` of any source, its distance to the nearest source.
/// One multi-source BFS; pairs are returned in BFS order (sources first).
/// The serving layer uses this to find the cache entries an edge delta can
/// affect (locality, Section 5.1: membership of v depends only on G_d(v)).
/// For inserts it runs on the *patched* graph; for deletes it must run on
/// the *pre-delete* graph too — a center that reached a deleted edge only
/// through that edge is distant in the patched graph but still stale.
std::vector<std::pair<NodeId, uint32_t>> NodesWithinRadiusOfAny(
    const Graph& g, std::span<const NodeId> sources, uint32_t radius);

/// The delta-affected region at radius `radius`: every node whose
/// r-neighborhood G_r(v) (r <= radius) can differ between `old_g` and
/// `new_g` after applying exactly `applied` + `applied_deletes`, paired
/// with its minimum distance to a touched endpoint. By the locality
/// property (Section 5.1) these are the only nodes whose membership in any
/// pattern of eval radius <= `radius` can have changed — the shared
/// invalidation/re-probe frontier of the serving tier (cache invalidation,
/// shard view extension) and the rule maintainer (evidence patching).
///
/// The BFS runs on the patched graph and — when deletes are present — on
/// the pre-delete graph too, unioned at minimum distance: a center whose
/// only path to a deleted edge ran THROUGH that edge is beyond `radius` on
/// the patched graph but its d-ball still lost the edge (non-monotone
/// reach). Pure-insert batches skip the second sweep (the patched graph
/// contains every old path). Pairs come back sorted by node id.
std::vector<std::pair<NodeId, uint32_t>> DeltaAffectedRegion(
    const Graph& old_g, const Graph& new_g,
    std::span<const EdgeInsert> applied,
    std::span<const EdgeDelete> applied_deletes, uint32_t radius);

}  // namespace gpar

#endif  // GPAR_GRAPH_GRAPH_DELTA_H_
