#include "graph/generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace gpar {

namespace {

/// Samples a person id with preference for the same community; falls back to
/// uniform when the community is a singleton.
NodeId SampleNeighbor(Rng& rng, const std::vector<std::vector<NodeId>>& members,
                      uint32_t community, NodeId num_persons, NodeId self,
                      double intra_prob) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    NodeId pick;
    if (rng.Bernoulli(intra_prob) && members[community].size() > 1) {
      const auto& m = members[community];
      pick = m[rng.Uniform(m.size())];
    } else {
      pick = static_cast<NodeId>(rng.Uniform(num_persons));
    }
    if (pick != self) return pick;
  }
  return (self + 1) % num_persons;
}

}  // namespace

Graph MakeSocialGraph(const SocialGraphSpec& spec) {
  Rng rng(spec.seed);
  GraphBuilder b;

  // Persons first: ids [0, num_persons).
  const LabelId person_label = b.InternLabel(spec.person_label);
  b.AddNodes(person_label, spec.num_persons);

  // Community assignment.
  const uint32_t nc = std::max<uint32_t>(1, spec.num_communities);
  std::vector<uint32_t> community(spec.num_persons);
  std::vector<std::vector<NodeId>> members(nc);
  for (NodeId p = 0; p < spec.num_persons; ++p) {
    community[p] = static_cast<uint32_t>(rng.Uniform(nc));
    members[community[p]].push_back(p);
  }

  // Social edges: heavy-tailed out-degree targets, Zipf edge-label mix,
  // mostly intra-community endpoints.
  std::vector<LabelId> social_labels;
  for (const std::string& l : spec.social_edge_labels) {
    social_labels.push_back(b.InternLabel(l));
  }
  if (spec.num_persons > 1 && !social_labels.empty()) {
    for (NodeId p = 0; p < spec.num_persons; ++p) {
      // Degree target: base average scaled by a Zipf rank factor in [1, 4].
      uint64_t rank = rng.Zipf(16, spec.degree_zipf_s);
      double factor = 0.25 + 3.75 / static_cast<double>(rank + 1);
      uint32_t deg = static_cast<uint32_t>(
          std::max(1.0, spec.social_avg_degree * factor * 0.5));
      for (uint32_t i = 0; i < deg; ++i) {
        NodeId q = SampleNeighbor(rng, members, community[p],
                                  spec.num_persons, p,
                                  spec.intra_community_prob);
        LabelId el =
            social_labels[rng.Zipf(social_labels.size(), spec.social_zipf_s)];
        b.AddEdgeUnchecked(p, el, q);
        // "friend"-style labels are symmetric in social graphs; mirror a
        // fraction of edges to create the bidirectional motifs the paper's
        // case-study rules use (R9: x follows u1, u1 follows u2, u2 follows x).
        if (rng.Bernoulli(0.35)) b.AddEdgeUnchecked(q, el, p);
      }
    }
  }

  // Item domains.
  for (const SocialGraphSpec::ItemDomain& dom : spec.domains) {
    // Materialize items: kind label -> item node ids.
    std::vector<std::vector<NodeId>> items_of_kind(dom.num_kinds);
    for (uint32_t k = 0; k < dom.num_kinds; ++k) {
      std::string label = dom.single_kind_label
                              ? dom.kind_prefix
                              : dom.kind_prefix + std::to_string(k);
      LabelId lid = b.InternLabel(label);
      for (uint32_t j = 0; j < dom.items_per_kind; ++j) {
        items_of_kind[k].push_back(b.AddNode(lid));
      }
    }
    LabelId edge_label = b.InternLabel(dom.edge_label);

    // Community preferences: each community prefers a few kinds.
    std::vector<std::vector<uint32_t>> pref(nc);
    for (uint32_t c = 0; c < nc; ++c) {
      for (uint32_t j = 0;
           j < std::min(dom.kinds_per_community, dom.num_kinds); ++j) {
        pref[c].push_back(static_cast<uint32_t>(rng.Zipf(dom.num_kinds, 0.8)));
      }
    }

    for (NodeId p = 0; p < spec.num_persons; ++p) {
      for (uint32_t kind : pref[community[p]]) {
        if (rng.Bernoulli(dom.adoption_prob)) {
          const auto& items = items_of_kind[kind];
          b.AddEdgeUnchecked(p, edge_label,
                             items[rng.Uniform(items.size())]);
        }
      }
      if (rng.Bernoulli(dom.noise_prob)) {
        uint32_t kind = static_cast<uint32_t>(rng.Uniform(dom.num_kinds));
        const auto& items = items_of_kind[kind];
        b.AddEdgeUnchecked(p, edge_label, items[rng.Uniform(items.size())]);
      }
    }
  }

  return std::move(b).Build();
}

Graph MakePokecLike(uint32_t scale, uint64_t seed) {
  SocialGraphSpec spec;
  spec.num_persons = 2000 * std::max<uint32_t>(1, scale);
  spec.person_label = "user";
  spec.social_avg_degree = 9.0;
  spec.social_edge_labels = {"follow", "friend"};
  spec.num_communities = 24 * std::max<uint32_t>(1, scale);
  spec.intra_community_prob = 0.8;
  spec.seed = seed;
  // 268 item-kind labels + "user" = 269 node labels; 9 item edge labels +
  // 2 social = 11 edge labels, matching Pokec's schema cardinalities.
  spec.domains = {
      {"music_", 40, 3, "like_music", 2, 0.65, 0.05, false},
      {"book_", 40, 3, "like_book", 2, 0.5, 0.05, false},
      {"hobby_", 48, 2, "hobby", 3, 0.7, 0.05, false},
      {"city_", 30, 1, "live_in", 1, 0.95, 0.01, false},
      {"group_", 40, 2, "member_of", 2, 0.5, 0.04, false},
      {"sport_", 30, 2, "does_sport", 2, 0.45, 0.04, false},
      {"movie_", 28, 3, "watches", 2, 0.5, 0.05, false},
      {"restaurant_", 6, 6, "visits", 1, 0.4, 0.05, false},
      {"blog_", 6, 8, "posts", 1, 0.3, 0.05, false},
  };
  return MakeSocialGraph(spec);
}

Graph MakeGPlusLike(uint32_t scale, uint64_t seed) {
  SocialGraphSpec spec;
  spec.num_persons = 3000 * std::max<uint32_t>(1, scale);
  spec.person_label = "person";
  spec.social_avg_degree = 12.0;
  spec.social_edge_labels = {"follow"};
  spec.num_communities = 20 * std::max<uint32_t>(1, scale);
  spec.intra_community_prob = 0.85;
  spec.seed = seed;
  // Google+'s *schema* has 5 node types (person, employer, school, major,
  // city) and 5 edge types — but its GPARs bind entity values ("CMU",
  // "Microsoft", "CS" in the paper's R11). Search conditions in this
  // library are labels, so item nodes carry per-entity labels
  // (employer7, school12, ...); the 5-type schema lives in the prefixes.
  // Without per-entity bindings, q(x, y) would have no LCWA negatives at
  // all (any majored_in edge would satisfy y) and every rule would
  // degenerate to a trivial logic rule.
  spec.domains = {
      {"employer", 30, 1, "works_at", 1, 0.8, 0.05, false},
      {"school", 40, 1, "attended", 1, 0.85, 0.05, false},
      {"major", 25, 1, "majored_in", 1, 0.75, 0.05, false},
      {"city", 30, 1, "lives_in", 1, 0.95, 0.02, false},
  };
  return MakeSocialGraph(spec);
}

Graph MakeSynthetic(uint32_t num_nodes, uint64_t num_edges,
                    uint32_t num_labels, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b;
  // Node labels: Zipf over the alphabet so some labels are frequent enough
  // to act as candidate sets for x.
  std::vector<LabelId> labels;
  labels.reserve(num_labels);
  for (uint32_t i = 0; i < num_labels; ++i) {
    // Built with append (not operator+) to dodge GCC 12's -Wrestrict false
    // positive (PR 105329) that fires when the concat inlines into this loop.
    std::string name = "l";
    name += std::to_string(i);
    labels.push_back(b.InternLabel(name));
  }
  for (uint32_t v = 0; v < num_nodes; ++v) {
    b.AddNode(labels[rng.Zipf(num_labels, 0.9)]);
  }
  // Edge labels: a tenth of the alphabet, Zipf-weighted.
  const uint32_t num_edge_labels = std::max<uint32_t>(4, num_labels / 10);
  std::vector<LabelId> elabels;
  for (uint32_t i = 0; i < num_edge_labels; ++i) {
    std::string name = "e";  // append, not operator+: GCC PR 105329
    name += std::to_string(i);
    elabels.push_back(b.InternLabel(name));
  }
  // Edges: endpoints mix uniform and "hub" choices for a heavy tail.
  const uint32_t hub_count = std::max<uint32_t>(1, num_nodes / 50);
  for (uint64_t i = 0; i < num_edges; ++i) {
    NodeId src = static_cast<NodeId>(rng.Uniform(num_nodes));
    NodeId dst = rng.Bernoulli(0.25)
                     ? static_cast<NodeId>(rng.Uniform(hub_count))
                     : static_cast<NodeId>(rng.Uniform(num_nodes));
    LabelId el = elabels[rng.Zipf(num_edge_labels, 1.0)];
    b.AddEdgeUnchecked(src, el, dst);
  }
  return std::move(b).Build();
}

}  // namespace gpar
