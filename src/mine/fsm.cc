#include "mine/fsm.h"

#include <algorithm>
#include <map>
#include <string>

#include "graph/stats.h"
#include "match/matcher.h"
#include "pattern/automorphism.h"
#include "rule/metrics.h"

namespace gpar {

namespace {

/// All single-edge growths of `p` from the seed alphabet (no designated
/// node or hop constraints — this is plain frequent-pattern growth).
std::vector<Pattern> GrowOnce(const Pattern& p,
                              const std::vector<EdgePatternStat>& seeds) {
  std::vector<Pattern> out;
  for (PNodeId u = 0; u < p.num_nodes(); ++u) {
    const LabelId ul = p.node(u).label;
    for (const EdgePatternStat& s : seeds) {
      if (s.src_label == ul) {
        Pattern grown = p;
        PNodeId w = grown.AddNode(s.dst_label);
        grown.AddEdge(u, s.edge_label, w);
        out.push_back(std::move(grown));
      }
      if (s.dst_label == ul) {
        Pattern grown = p;
        PNodeId w = grown.AddNode(s.src_label);
        grown.AddEdge(w, s.edge_label, u);
        out.push_back(std::move(grown));
      }
    }
  }
  // Backward growth: close an edge between existing nodes.
  for (PNodeId u = 0; u < p.num_nodes(); ++u) {
    for (PNodeId w = 0; w < p.num_nodes(); ++w) {
      if (u == w) continue;
      for (const EdgePatternStat& s : seeds) {
        if (s.src_label != p.node(u).label || s.dst_label != p.node(w).label) {
          continue;
        }
        bool exists = false;
        for (const PatternEdge& e : p.edges()) {
          if (e.src == u && e.dst == w && e.label == s.edge_label) {
            exists = true;
            break;
          }
        }
        if (exists) continue;
        Pattern grown = p;
        grown.AddEdge(u, s.edge_label, w);
        out.push_back(std::move(grown));
      }
    }
  }
  return out;
}

}  // namespace

std::vector<FrequentPattern> MineFrequentSubgraphs(const Graph& g,
                                                   const FsmOptions& options) {
  VF2Matcher matcher(g);
  std::vector<EdgePatternStat> seeds =
      FrequentEdgePatterns(g, options.seed_edge_limit);

  std::vector<FrequentPattern> result;
  std::vector<Pattern> frontier;
  std::map<std::string, std::vector<Pattern>> seen;

  auto try_add = [&](Pattern p) {
    std::string key = IsomorphismBucketKey(p);
    auto& bucket = seen[key];
    for (const Pattern& q : bucket) {
      if (AreIsomorphic(q, p, /*preserve_designated=*/false)) return;
    }
    bucket.push_back(p);
    uint64_t supp = MinImageSupport(matcher, p, options.embedding_cap);
    if (supp < options.min_support) return;  // MNI is anti-monotonic: stop
    result.push_back({p, supp});
    frontier.push_back(std::move(p));
  };

  // Level 1: the seed edges themselves.
  for (const EdgePatternStat& s : seeds) {
    Pattern p;
    PNodeId a = p.AddNode(s.src_label);
    PNodeId b = p.AddNode(s.dst_label);
    p.AddEdge(a, s.edge_label, b);
    try_add(std::move(p));
  }

  // Levelwise growth.
  for (uint32_t level = 2; level <= options.max_edges; ++level) {
    std::vector<Pattern> current = std::move(frontier);
    frontier.clear();
    for (const Pattern& p : current) {
      for (Pattern& grown : GrowOnce(p, seeds)) {
        try_add(std::move(grown));
      }
    }
    if (frontier.empty()) break;
  }

  std::stable_sort(result.begin(), result.end(),
                   [](const FrequentPattern& a, const FrequentPattern& b) {
                     return a.support > b.support;
                   });
  if (result.size() > options.max_patterns) result.resize(options.max_patterns);
  return result;
}

}  // namespace gpar
