#ifndef GPAR_MINE_NAIVE_MINER_H_
#define GPAR_MINE_NAIVE_MINER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "mine/dmine.h"
#include "mine/mined_rule.h"

namespace gpar {

/// Result of the naive "discover and diversify" miner.
struct NaiveMineResult {
  /// Every GPAR with supp >= sigma and radius <= d (the full Σ).
  std::vector<std::shared_ptr<MinedRule>> all_rules;
  std::vector<std::shared_ptr<MinedRule>> topk;
  double objective = 0;
};

/// Sequential exhaustive miner (the strawman of Section 4.2): first finds
/// all GPARs pertaining to q by levelwise growth (no reduction rules, no
/// incremental diversification, single thread, whole graph), then picks the
/// diversified top-k by greedy max-sum dispersion.
///
/// Serves two purposes: the ground-truth oracle DMine's parallel pool must
/// match exactly (tests), and the "why DMine" cost baseline.
Result<NaiveMineResult> NaiveMine(const Graph& g, const Predicate& q,
                                  const DmineOptions& options);

}  // namespace gpar

#endif  // GPAR_MINE_NAIVE_MINER_H_
