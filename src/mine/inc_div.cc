#include "mine/inc_div.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "rule/diversity.h"

namespace gpar {

IncDiv::IncDiv(uint32_t k, double lambda, double n_norm)
    : k_(k), lambda_(lambda), n_norm_(n_norm), max_pairs_((k + 1) / 2) {}

double IncDiv::PairFPrime(const MinedRule& a, const MinedRule& b) const {
  double diff = JaccardDistance(a.matches, b.matches);
  return FPrime(a.conf, b.conf, diff, lambda_, n_norm_, k_);
}

bool IncDiv::UsedInQueue(const MinedRule* r) const {
  return in_queue_.count(r) > 0;
}

bool IncDiv::InQueue(const MinedRule* rule) const { return UsedInQueue(rule); }

void IncDiv::AddRound(const std::vector<std::shared_ptr<MinedRule>>& delta,
                      const std::vector<std::shared_ptr<MinedRule>>& sigma) {
  // Phase 1 — fill: while the queue holds < ⌈k/2⌉ pairs, greedily insert
  // the disjoint pair maximizing F'; at least one member must be new. Each
  // unordered pair is scored exactly once (PairFPrime runs a Jaccard merge,
  // the dominant cost): a both-new pair {a, b} is visited only from the
  // earlier of a, b in ΔE, and the Σ-only fallback iterates i < j.
  std::unordered_map<const MinedRule*, size_t> delta_idx;
  delta_idx.reserve(delta.size());
  for (size_t i = 0; i < delta.size(); ++i) delta_idx.emplace(delta[i].get(), i);

  while (queue_.size() < max_pairs_) {
    const MinedRule* best_a = nullptr;
    const MinedRule* best_b = nullptr;
    std::shared_ptr<MinedRule> best_a_sp, best_b_sp;
    double best_f = -1;
    auto consider = [&](const std::shared_ptr<MinedRule>& ra,
                        const std::shared_ptr<MinedRule>& rb) {
      if (ra.get() == rb.get()) return;
      if (ra->pruned || rb->pruned) return;
      if (UsedInQueue(ra.get()) || UsedInQueue(rb.get())) return;
      double f = PairFPrime(*ra, *rb);
      if (f > best_f) {
        best_f = f;
        best_a = ra.get();
        best_b = rb.get();
        best_a_sp = ra;
        best_b_sp = rb;
      }
    };
    for (size_t ai = 0; ai < delta.size(); ++ai) {
      for (const auto& rb : sigma) {
        auto it = delta_idx.find(rb.get());
        // Skip self-pairs and pairs already visited from an earlier ΔE
        // member; first-encounter order matches the old double scan, so
        // tie-breaking under strict > is unchanged.
        if (it != delta_idx.end() && it->second <= ai) continue;
        consider(delta[ai], rb);
      }
    }
    // Fall back to pool-only pairs so the queue can fill even when ΔE is
    // exhausted (e.g. a late round discovering nothing new).
    if (best_a == nullptr) {
      for (size_t i = 0; i < sigma.size(); ++i) {
        for (size_t j = i + 1; j < sigma.size(); ++j) {
          consider(sigma[i], sigma[j]);
        }
      }
    }
    if (best_a == nullptr) break;  // fewer rules than slots
    queue_.push_back({best_a_sp, best_b_sp, best_f});
    in_queue_.insert(best_a);
    in_queue_.insert(best_b);
  }

  // Phase 2 — replace: each new rule pairs with its best partner in Σ; the
  // minimum-F' pair is evicted when the new pair beats it.
  for (const auto& r : delta) {
    if (r->pruned || UsedInQueue(r.get())) continue;
    const std::shared_ptr<MinedRule>* best_partner = nullptr;
    double best_f = -1;
    for (const auto& s : sigma) {
      if (s.get() == r.get() || s->pruned || UsedInQueue(s.get())) continue;
      double f = PairFPrime(*r, *s);
      if (f > best_f) {
        best_f = f;
        best_partner = &s;
      }
    }
    if (best_partner == nullptr) continue;
    auto min_it =
        std::min_element(queue_.begin(), queue_.end(),
                         [](const QueuePair& a, const QueuePair& b) {
                           return a.fprime < b.fprime;
                         });
    if (min_it != queue_.end() && min_it->fprime < best_f) {
      in_queue_.erase(min_it->a.get());
      in_queue_.erase(min_it->b.get());
      *min_it = {r, *best_partner, best_f};
      in_queue_.insert(r.get());
      in_queue_.insert(best_partner->get());
    }
  }
}

std::vector<std::shared_ptr<MinedRule>> IncDiv::TopK() const {
  std::vector<QueuePair> sorted = queue_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const QueuePair& a, const QueuePair& b) {
                     return a.fprime > b.fprime;
                   });
  std::vector<std::shared_ptr<MinedRule>> out;
  for (const QueuePair& p : sorted) {
    if (out.size() < k_) out.push_back(p.a);
    if (out.size() < k_) out.push_back(p.b);
  }
  return out;
}

double IncDiv::MinPairFPrime() const {
  if (queue_.size() < max_pairs_) {
    return -std::numeric_limits<double>::infinity();
  }
  double m = std::numeric_limits<double>::infinity();
  for (const QueuePair& p : queue_) m = std::min(m, p.fprime);
  return m;
}

double IncDiv::Objective() const {
  auto topk = TopK();
  std::vector<double> confs;
  std::vector<const std::vector<NodeId>*> sets;
  for (const auto& r : topk) {
    confs.push_back(r->conf);
    sets.push_back(&r->matches);
  }
  return ObjectiveF(confs, sets, lambda_, n_norm_, k_);
}

std::vector<std::shared_ptr<MinedRule>> FullDiversify(
    const std::vector<std::shared_ptr<MinedRule>>& pool, uint32_t k,
    double lambda, double n_norm) {
  std::vector<std::shared_ptr<MinedRule>> remaining;
  for (const auto& r : pool) {
    if (!r->pruned) remaining.push_back(r);
  }
  std::vector<std::shared_ptr<MinedRule>> out;
  // Greedy max-sum dispersion [19]: repeatedly take the pair with maximum
  // F' among unused rules.
  while (out.size() + 1 < k && remaining.size() >= 2) {
    size_t bi = 0, bj = 1;
    double best = -1;
    for (size_t i = 0; i < remaining.size(); ++i) {
      for (size_t j = i + 1; j < remaining.size(); ++j) {
        double diff =
            JaccardDistance(remaining[i]->matches, remaining[j]->matches);
        double f = FPrime(remaining[i]->conf, remaining[j]->conf, diff,
                          lambda, n_norm, k);
        if (f > best) {
          best = f;
          bi = i;
          bj = j;
        }
      }
    }
    out.push_back(remaining[bi]);
    out.push_back(remaining[bj]);
    // Erase higher index first.
    remaining.erase(remaining.begin() + bj);
    remaining.erase(remaining.begin() + bi);
  }
  if (out.size() < k && !remaining.empty()) {
    // Odd k: add the rule with the best marginal confidence.
    auto best = std::max_element(remaining.begin(), remaining.end(),
                                 [](const auto& a, const auto& b) {
                                   return a->conf < b->conf;
                                 });
    out.push_back(*best);
  }
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace gpar
