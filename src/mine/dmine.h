#ifndef GPAR_MINE_DMINE_H_
#define GPAR_MINE_DMINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/stats.h"
#include "mine/mined_rule.h"
#include "parallel/bsp.h"
#include "rule/gpar.h"

namespace gpar {

/// Options for the DMine algorithm (Section 4.2). The three `enable_*`
/// flags switch the optimizations the paper ablates: DMineno is DMine with
/// all three disabled ("its counterpart without optimization (incremental,
/// reductions and bisimilarity checking)", Section 6).
struct DmineOptions {
  uint32_t num_workers = 4;  ///< n-1 workers; the coordinator is implicit
  uint32_t k = 10;           ///< size of the diversified top-k
  uint32_t d = 2;            ///< radius bound r(P_R, x) <= d
  uint64_t sigma = 1;        ///< support threshold supp(R, G) >= sigma
  double lambda = 0.5;       ///< diversification balance in F
  uint32_t max_pattern_edges = 6;   ///< growth cap per pattern
  size_t seed_edge_limit = 20;      ///< most frequent edge patterns used
  size_t max_candidates_per_round = 300;  ///< cap on |M| sent to workers
  bool enable_incremental_div = true;
  bool enable_reduction_rules = true;
  bool enable_bisim_prefilter = true;
  /// Levelwise parent-match pruning: workers evaluate an extension only at
  /// the centers where its parent rule matched (anti-monotonicity, §4.2)
  /// instead of re-testing every owned center each round. Sound — pruned and
  /// unpruned runs produce identical supports, confidences, and top-k — and
  /// kept as an ablation flag for the Exp-1 benches.
  bool enable_parent_prune = true;
  /// Decentralized candidate generation (the paper's worker/coordinator
  /// contract, §4.2): each worker *proposes* the extensions of the parents
  /// surviving in its own fragment — one deterministic owner per parent, so
  /// no fragment duplicates another's generation work — and ships them to
  /// the coordinator as `CandidateProposal` messages; the coordinator's
  /// role shrinks to cross-fragment ordering/duplicate merging,
  /// automorphism dedup (bisim prefilter + exact test), and the per-round
  /// cap. Off = the legacy centralized path (coordinator generates every
  /// extension itself), kept as the A/B baseline for the Exp-1 benches.
  /// Both settings are result-identical: same candidate pools, supports,
  /// confidences, and diversified top-k (enforced by the
  /// WorkerGenEquivalence property test).
  bool enable_worker_gen = true;
  /// Materialize fragments as copied induced subgraphs (the pre-view
  /// representation) instead of zero-copy `GraphView`s over the parent
  /// CSR. Off = views (default): fragment memory is O(node-id lists), the
  /// partition build skips the per-fragment CSR rebuild, and worker match
  /// evidence is globally addressed by construction. Kept as the A/B
  /// baseline for the Exp-4 bench; both settings produce byte-identical
  /// results (ViewCopyEquivalence property battery).
  bool use_fragment_copies = false;
  /// Share one read-only `SearchPlanStore` across workers: patterns are
  /// identical across fragments, so the coordinator plans each round's
  /// candidates once and worker matchers consult the store instead of
  /// re-planning per worker. Result-identical either way; the
  /// `plans_shared_hits` stat counts store-served probes.
  bool enable_shared_plans = true;
  /// Prune-aware Usupp (Lemma 3 tightening): count toward Usupp only the
  /// matched centers whose d-neighborhood can still grow
  /// (`center_hops_available > 0`) instead of all of supp_r. HEURISTIC,
  /// not a proven bound: a saturated-N_d center can still match an
  /// extension — backward extensions add no node, and even a forward
  /// extension's new node may map to an unused node already inside N_d —
  /// so the tightened Usupp can undercount and, in principle, over-prune.
  /// It therefore ships off by default; the PruneAwareUsuppEquivalence
  /// property battery asserts it never changes the reduced output on the
  /// tested configurations.
  bool enable_prune_aware_usupp = false;
};

/// Returns `base` with every optimization disabled (the paper's DMineno).
/// `enable_parent_prune` and `enable_worker_gen` are left untouched: they
/// are this implementation's own ablation axes, not among the paper's
/// three.
DmineOptions DmineNoOptions(DmineOptions base = {});

/// Counters reported alongside the result.
struct DmineStats {
  uint64_t supp_q = 0;
  uint64_t supp_qbar = 0;
  size_t candidates_generated = 0;  ///< extensions produced before dedup
  size_t candidates_verified = 0;   ///< sent to workers for support counting
  size_t accepted = 0;              ///< entered Σ (supp >= sigma, nontrivial)
  size_t automorphic_merged = 0;    ///< deduped by bisim/iso grouping
  size_t pruned_by_reduction = 0;
  size_t trivial_discarded = 0;     ///< logic rules (supp(Q~q) = 0)
  uint64_t bisim_tests = 0;
  uint64_t iso_tests = 0;
  /// Worker-loop ExistsAt probes (both the P_R and the x-component side).
  uint64_t exists_calls = 0;
  /// Centers the workers never probed because the candidate's parent rule
  /// did not match there (0 when `enable_parent_prune` is off or every
  /// round-1 candidate exhausts its seed pool).
  uint64_t centers_skipped_by_parent = 0;
  /// Raw candidate proposals emitted by each worker across all rounds,
  /// indexed by worker id (empty when `enable_worker_gen` is off). The sum
  /// exceeds `candidates_generated` exactly by `cross_fragment_merged`.
  std::vector<uint64_t> proposals_per_worker;
  /// Proposals discarded because another fragment already proposed the same
  /// extension of the same parent (same (parent, ext_ordinal) key) — the
  /// coordinator's cross-fragment duplicate merge, upstream of the
  /// automorphism dedup that feeds `automorphic_merged`. Single-owner
  /// assignment keeps this at 0 in real runs; a nonzero value is a tripwire
  /// for a double-proposing ownership bug (tracked in BENCH_dmine.json).
  size_t cross_fragment_merged = 0;
  /// Coordinator CPU seconds spent producing each round's verified
  /// candidate set: proposal merging + automorphism dedup + cap under
  /// `enable_worker_gen`, full generation + dedup + cap on the centralized
  /// path. The quantity the Exp-1 WorkerGen ablation tracks (its share of
  /// `ParallelTimes::coordinator_seconds` shrinks when generation moves to
  /// the workers).
  double coordinator_merge_seconds = 0;
  /// Worker probes whose search plan came from the shared read-only plan
  /// store (0 when `enable_shared_plans` is off): each hit is a per-worker
  /// pattern expansion + plan construction that was not repeated.
  uint64_t plans_shared_hits = 0;
  /// Distinct patterns the coordinator planned into the shared store.
  size_t plans_prepared = 0;
  /// Lineage (parent match-set) message volume, worker -> coordinator,
  /// under `enable_parent_prune`: what the raw center lists would have
  /// cost, and what the match-set-delta encoding actually shipped (see
  /// match_delta.h). Both 0 with pruning off (no lineage travels).
  uint64_t evidence_bytes_full = 0;
  uint64_t evidence_bytes_delta = 0;
};

/// Output of Dmine: the diversified top-k, its objective value F(L_k), and
/// run statistics/timings.
struct DmineResult {
  std::vector<std::shared_ptr<MinedRule>> topk;
  double objective = 0;
  DmineStats stats;
  ParallelTimes times;
};

/// Discovers top-k diversified GPARs pertaining to `q` in `g` (problem DMP,
/// Section 4.1) with DMine's BSP structure: the graph is partitioned into
/// `num_workers` fragments with d-hop locality; in round r each worker
/// first *proposes* candidate extensions from its locally surviving parents
/// and then evaluates the merged round candidates (radius r) over its owned
/// centers; the coordinator merges cross-fragment duplicate and automorphic
/// proposals, assembles confidences, updates the top-k incrementally
/// (incDiv), and prunes via the Lemma-3 reduction rules and
/// bisimulation-prefiltered automorphism grouping.
///
/// Worker/coordinator candidate contract (round r, `enable_worker_gen`):
///  1. Worker i enumerates `GenerateExtensions(parent)` for each parent
///     rule it *owns*: a parent is owned by exactly one of the fragments
///     where it survives (`frag_pr_centers[j]` non-empty; round-robin over
///     the survivors by parent index, derived locally from the broadcast
///     lineage — round 1 extends the bare predicate from the q-pool), and
///     ships one `CandidateProposal` per extension.
///  2. The coordinator re-orders the per-worker proposal streams by their
///     exact (parent, ext_ordinal) key, collapsing any duplicate keys
///     (`MergeProposals`, `cross_fragment_merged` — zero under single
///     ownership; nonzero flags a double-proposing assignment bug), then
///     merges *automorphic* candidates proposed by different workers with
///     the bisim-prefiltered exact test (`DedupCandidates`,
///     `automorphic_merged`) and applies `max_candidates_per_round`.
/// Because every extendable parent survives in at least one fragment and
/// its owner enumerates the full deterministic extension set, the merged,
/// ordered candidate stream is byte-identical to the centralized path's —
/// decentralization moves generation cost from `coordinator_seconds` into
/// the round makespan without changing any result (pools, supports,
/// confidences, diversified top-k).
Result<DmineResult> Dmine(const Graph& g, const Predicate& q,
                          const DmineOptions& options = {});

/// Parent index carried by round-1 proposals: extensions of the bare
/// predicate q(x, y), which has no MinedRule parent. Sorts after all real
/// parent indices; rounds never mix root and non-root proposals.
inline constexpr size_t kRootParent = static_cast<size_t>(-1);

/// One worker-proposed candidate extension — the compact BSP message of the
/// generation half-round. (parent, ext_ordinal) identifies the extension
/// exactly: `GenerateExtensions` is deterministic, so equal keys denote
/// equal grown patterns no matter which fragment proposed them. The
/// structural hash guards that invariant at merge time — duplicate keys
/// only collapse when the checksums agree; a mismatch keeps both proposals
/// for the exact automorphism tests instead of silently dropping a rule.
/// `local_evidence` is the proposing fragment's support evidence (its
/// surviving parent-center count; summed across proposers on merge). It is
/// diagnostic payload for tests and tripwire forensics only — under single
/// ownership it covers one fragment, so it bounds nothing global, and the
/// support assembly deliberately ignores it: exact supports come from the
/// evaluation round.
struct CandidateProposal {
  size_t parent = kRootParent;  ///< index into this round's parent list
  uint32_t ext_ordinal = 0;     ///< index into GenerateExtensions(parent)
  uint64_t structural_hash = 0; ///< StructuralHash of the grown P_R
  uint32_t local_evidence = 0;  ///< surviving parent centers at the proposer
  Gpar rule;                    ///< the grown rule, materialized worker-side
};

/// Coordinator half of the contract, step 2a: collapses per-worker proposal
/// vectors into one stream with cross-fragment duplicates (equal
/// (parent, ext_ordinal) AND equal structural checksum) merged — first
/// proposer's rule kept, evidence summed, `stats->cross_fragment_merged`
/// incremented — ordered by (parent, ext_ordinal) ascending, i.e. exactly
/// the order the centralized generator would emit. Exposed for tests.
std::vector<CandidateProposal> MergeProposals(
    std::vector<std::vector<CandidateProposal>> per_worker, DmineStats* stats);

/// Generates the round-r candidate extensions of `antecedent` (designated
/// x, y; `q_label` consequent) from the seed-edge alphabet: new edges whose
/// farther endpoint sits at hop r from x in P_R. Exposed for tests.
std::vector<Gpar> GenerateExtensions(const Pattern& antecedent,
                                     LabelId q_label, uint32_t round_r,
                                     uint32_t max_edges,
                                     const std::vector<EdgePatternStat>& seeds);

/// Deduplicates `fresh` against itself and `seen_buckets` (buckets keyed by
/// the isomorphism-invariant `IsomorphismBucketHash`, then optionally
/// bisimulation-prefiltered designated isomorphism), keeping at most
/// `max_keep` candidates. The cap is applied *before* a pattern is
/// registered in `seen_buckets`: a candidate dropped by the cap is not
/// poisoned as "seen" and may re-enter in a later round (the pre-cap
/// registration bug silently deduped such candidates forever). Returns the
/// kept candidates' indices into `fresh`, ascending. Exposed for tests.
std::vector<size_t> DedupCandidates(
    const std::vector<Gpar>& fresh, size_t max_keep,
    std::unordered_map<uint64_t, std::vector<Pattern>>* seen_buckets,
    bool bisim_prefilter, DmineStats* stats);

}  // namespace gpar

#endif  // GPAR_MINE_DMINE_H_
