#ifndef GPAR_MINE_DMINE_H_
#define GPAR_MINE_DMINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/stats.h"
#include "mine/mined_rule.h"
#include "parallel/bsp.h"
#include "rule/gpar.h"

namespace gpar {

/// Options for the DMine algorithm (Section 4.2). The three `enable_*`
/// flags switch the optimizations the paper ablates: DMineno is DMine with
/// all three disabled ("its counterpart without optimization (incremental,
/// reductions and bisimilarity checking)", Section 6).
struct DmineOptions {
  uint32_t num_workers = 4;  ///< n-1 workers; the coordinator is implicit
  uint32_t k = 10;           ///< size of the diversified top-k
  uint32_t d = 2;            ///< radius bound r(P_R, x) <= d
  uint64_t sigma = 1;        ///< support threshold supp(R, G) >= sigma
  double lambda = 0.5;       ///< diversification balance in F
  uint32_t max_pattern_edges = 6;   ///< growth cap per pattern
  size_t seed_edge_limit = 20;      ///< most frequent edge patterns used
  size_t max_candidates_per_round = 300;  ///< cap on |M| sent to workers
  bool enable_incremental_div = true;
  bool enable_reduction_rules = true;
  bool enable_bisim_prefilter = true;
  /// Levelwise parent-match pruning: workers evaluate an extension only at
  /// the centers where its parent rule matched (anti-monotonicity, §4.2)
  /// instead of re-testing every owned center each round. Sound — pruned and
  /// unpruned runs produce identical supports, confidences, and top-k — and
  /// kept as an ablation flag for the Exp-1 benches.
  bool enable_parent_prune = true;
};

/// Returns `base` with every optimization disabled (the paper's DMineno).
/// `enable_parent_prune` is left untouched: it is this implementation's own
/// ablation axis, not one of the paper's three.
DmineOptions DmineNoOptions(DmineOptions base = {});

/// Counters reported alongside the result.
struct DmineStats {
  uint64_t supp_q = 0;
  uint64_t supp_qbar = 0;
  size_t candidates_generated = 0;  ///< extensions produced before dedup
  size_t candidates_verified = 0;   ///< sent to workers for support counting
  size_t accepted = 0;              ///< entered Σ (supp >= sigma, nontrivial)
  size_t automorphic_merged = 0;    ///< deduped by bisim/iso grouping
  size_t pruned_by_reduction = 0;
  size_t trivial_discarded = 0;     ///< logic rules (supp(Q~q) = 0)
  uint64_t bisim_tests = 0;
  uint64_t iso_tests = 0;
  /// Worker-loop ExistsAt probes (both the P_R and the x-component side).
  uint64_t exists_calls = 0;
  /// Centers the workers never probed because the candidate's parent rule
  /// did not match there (0 when `enable_parent_prune` is off or every
  /// round-1 candidate exhausts its seed pool).
  uint64_t centers_skipped_by_parent = 0;
};

/// Output of Dmine: the diversified top-k, its objective value F(L_k), and
/// run statistics/timings.
struct DmineResult {
  std::vector<std::shared_ptr<MinedRule>> topk;
  double objective = 0;
  DmineStats stats;
  ParallelTimes times;
};

/// Discovers top-k diversified GPARs pertaining to `q` in `g` (problem DMP,
/// Section 4.1) with DMine's BSP structure: the graph is partitioned into
/// `num_workers` fragments with d-hop locality; in round r each worker
/// evaluates the round's candidate GPARs (radius r) over its owned centers;
/// the coordinator assembles confidences, updates the top-k incrementally
/// (incDiv), and prunes via the Lemma-3 reduction rules and
/// bisimulation-prefiltered automorphism grouping.
///
/// Candidate generation note: the paper's workers propose extensions from
/// local data and the coordinator merges automorphic copies. This
/// implementation generates the (deterministic) extension set once at the
/// coordinator from the frequent-edge alphabet — the same set every worker
/// would produce, which keeps the assembled supports exact — and leaves the
/// evaluation work on the workers, preserving the cost structure the
/// Exp-1 benchmarks measure.
Result<DmineResult> Dmine(const Graph& g, const Predicate& q,
                          const DmineOptions& options = {});

/// Generates the round-r candidate extensions of `antecedent` (designated
/// x, y; `q_label` consequent) from the seed-edge alphabet: new edges whose
/// farther endpoint sits at hop r from x in P_R. Exposed for tests.
std::vector<Gpar> GenerateExtensions(const Pattern& antecedent,
                                     LabelId q_label, uint32_t round_r,
                                     uint32_t max_edges,
                                     const std::vector<EdgePatternStat>& seeds);

/// Deduplicates `fresh` against itself and `seen_buckets` (bucket keys, then
/// optionally bisimulation-prefiltered designated isomorphism), keeping at
/// most `max_keep` candidates. The cap is applied *before* a pattern is
/// registered in `seen_buckets`: a candidate dropped by the cap is not
/// poisoned as "seen" and may re-enter in a later round (the pre-cap
/// registration bug silently deduped such candidates forever). Returns the
/// kept candidates' indices into `fresh`, ascending. Exposed for tests.
std::vector<size_t> DedupCandidates(
    const std::vector<Gpar>& fresh, size_t max_keep,
    std::map<std::string, std::vector<Pattern>>* seen_buckets,
    bool bisim_prefilter, DmineStats* stats);

}  // namespace gpar

#endif  // GPAR_MINE_DMINE_H_
