#ifndef GPAR_MINE_MULTI_DMINE_H_
#define GPAR_MINE_MULTI_DMINE_H_

#include <string>
#include <utility>
#include <vector>

#include "mine/dmine.h"

namespace gpar {

/// Results of mining several predicates, one DMP instance each.
struct MultiDmineResult {
  std::vector<std::pair<Predicate, DmineResult>> per_predicate;
};

/// The paper's §4.2 remark (1): "When a set of predicates instead of a
/// single q(x, y) is given, it groups the predicates and iteratively mines
/// GPARs for each distinct q(x, y)." Duplicated predicates are mined once.
Result<MultiDmineResult> DmineForPredicates(
    const Graph& g, const std::vector<Predicate>& predicates,
    const DmineOptions& options);

/// The paper's §4.2 remark (2): "When no specific q(x, y) is given, it
/// first collects a set of predicates of interests (e.g., most frequent
/// edges, or with user specified label q)". Collects the
/// `num_predicates` most frequent edge patterns — optionally restricted to
/// a given edge label — and mines each.
Result<MultiDmineResult> DmineAuto(const Graph& g, const DmineOptions& options,
                                   size_t num_predicates = 5,
                                   LabelId edge_label_filter = kNoLabel);

}  // namespace gpar

#endif  // GPAR_MINE_MULTI_DMINE_H_
