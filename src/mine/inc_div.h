#ifndef GPAR_MINE_INC_DIV_H_
#define GPAR_MINE_INC_DIV_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "mine/mined_rule.h"

namespace gpar {

/// Incremental diversification (procedure incDiv, Section 4.2).
///
/// Maintains a max priority queue of ⌈k/2⌉ pairwise-disjoint GPAR pairs
/// maximizing the pairwise objective F'. Each round the newly accepted
/// rules ΔE are offered; a new pair replaces the minimum-F' pair when it
/// improves on it. This is the greedy strategy of [19] with approximation
/// ratio 2 for max-sum diversification, made incremental so the top-k list
/// is never recomputed from scratch.
///
/// Rules are owned by the caller (DMine's Σ, stable `shared_ptr`s).
class IncDiv {
 public:
  IncDiv(uint32_t k, double lambda, double n_norm);

  /// Offers one round of newly accepted rules. `sigma` is the full pool Σ
  /// (including `delta`); pruned rules are skipped as pair partners.
  void AddRound(const std::vector<std::shared_ptr<MinedRule>>& delta,
                const std::vector<std::shared_ptr<MinedRule>>& sigma);

  /// Current top-k rules (flattened pairs, best F' first, truncated to k).
  std::vector<std::shared_ptr<MinedRule>> TopK() const;

  /// F'm: the minimum F' among queue pairs; -infinity while the queue is
  /// not yet full (no pruning is safe before that, per Lemma 3's premise).
  double MinPairFPrime() const;

  /// True iff `rule` currently sits in the queue (such rules must never be
  /// pruned from Σ: they are part of L_k).
  bool InQueue(const MinedRule* rule) const;

  /// F(L_k) of the current top-k (for reporting).
  double Objective() const;

  uint32_t k() const { return k_; }
  double lambda() const { return lambda_; }
  double n_norm() const { return n_norm_; }

 private:
  struct QueuePair {
    std::shared_ptr<MinedRule> a;
    std::shared_ptr<MinedRule> b;
    double fprime;
  };

  double PairFPrime(const MinedRule& a, const MinedRule& b) const;
  bool UsedInQueue(const MinedRule* r) const;

  uint32_t k_;
  double lambda_;
  double n_norm_;
  uint32_t max_pairs_;
  std::vector<QueuePair> queue_;
  /// Members of `queue_`, kept in sync on every insert/replace: membership
  /// tests run inside AddRound's O(|σ|²) pair scans, so they must be O(1),
  /// not a walk over the queue.
  std::unordered_set<const MinedRule*> in_queue_;
};

/// Non-incremental greedy diversification over a full pool ("discover and
/// diversify", also what DMineno recomputes every round): repeatedly picks
/// the disjoint pair maximizing F'. Same 2-approximation, higher cost.
std::vector<std::shared_ptr<MinedRule>> FullDiversify(
    const std::vector<std::shared_ptr<MinedRule>>& pool, uint32_t k,
    double lambda, double n_norm);

}  // namespace gpar

#endif  // GPAR_MINE_INC_DIV_H_
