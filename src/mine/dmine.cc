#include "mine/dmine.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "graph/partition.h"
#include "match/matcher.h"
#include "mine/inc_div.h"
#include "mine/reduction.h"
#include "pattern/automorphism.h"
#include "pattern/bisimulation.h"
#include "pattern/pattern_ops.h"
#include "rule/diversity.h"
#include "rule/match_delta.h"
#include "rule/metrics.h"

namespace gpar {

DmineOptions DmineNoOptions(DmineOptions base) {
  base.enable_incremental_div = false;
  base.enable_reduction_rules = false;
  base.enable_bisim_prefilter = false;
  return base;
}

std::vector<Gpar> GenerateExtensions(const Pattern& antecedent,
                                     LabelId q_label, uint32_t d,
                                     uint32_t max_edges,
                                     const std::vector<EdgePatternStat>& seeds) {
  std::vector<Gpar> out;
  if (antecedent.num_edges() >= max_edges) return out;

  // Distances are measured on P_R (antecedent + consequent edge): node ids
  // of the antecedent are unchanged in P_R.
  Pattern pr = antecedent;
  pr.AddEdge(antecedent.x(), q_label, antecedent.y());
  std::vector<uint32_t> dist = DistancesFrom(pr, pr.x());

  auto emit = [&](const Extension& ext) {
    Pattern grown = ApplyExtension(antecedent, ext);
    auto r = Gpar::Create(std::move(grown), q_label);
    // Enforce the radius bound on P_R *and* on the antecedent's
    // x-component (the latter keeps fragment-local antecedent matching
    // exact with d-hop partitions; see Gpar::eval_radius).
    if (r.ok() && r.value().eval_radius() <= d) {
      out.push_back(std::move(r).value());
    }
  };

  // Forward extensions: attach a new node to any node within hop d-1 of x,
  // so the new node stays within radius d.
  for (PNodeId u = 0; u < antecedent.num_nodes(); ++u) {
    if (dist[u] >= d) continue;
    const LabelId ul = antecedent.node(u).label;
    for (const EdgePatternStat& s : seeds) {
      if (s.src_label == ul) {
        emit({u, /*out=*/true, s.edge_label, s.dst_label, kNoPatternNode});
      }
      if (s.dst_label == ul) {
        emit({u, /*out=*/false, s.edge_label, s.src_label, kNoPatternNode});
      }
    }
  }

  // Backward extensions: a new edge between existing nodes (never grows
  // the radius).
  for (PNodeId u = 0; u < antecedent.num_nodes(); ++u) {
    for (PNodeId w = 0; w < antecedent.num_nodes(); ++w) {
      if (u == w) continue;
      const LabelId ul = antecedent.node(u).label;
      const LabelId wl = antecedent.node(w).label;
      for (const EdgePatternStat& s : seeds) {
        if (s.src_label != ul || s.dst_label != wl) continue;
        // Skip duplicates of existing edges and of the consequent itself.
        if (u == antecedent.x() && w == antecedent.y() &&
            s.edge_label == q_label) {
          continue;
        }
        bool exists = false;
        for (const PatternEdge& e : antecedent.edges()) {
          if (e.src == u && e.dst == w && e.label == s.edge_label) {
            exists = true;
            break;
          }
        }
        if (!exists) {
          emit({u, /*out=*/true, s.edge_label, kNoLabel, w});
        }
      }
    }
  }
  return out;
}

namespace {

/// Per-worker evaluation context over one fragment.
struct WorkerState {
  const Fragment* frag = nullptr;
  std::unique_ptr<VF2Matcher> matcher;
  std::vector<uint32_t> q_centers;     // center indices in P_q(x, ·)
  std::vector<uint32_t> qbar_centers;  // center indices in the ~q pool
  uint64_t supp_q_local = 0;
  uint64_t supp_qbar_local = 0;
  uint64_t exists_calls = 0;
  uint64_t centers_skipped = 0;
  uint64_t evidence_bytes_full = 0;
  uint64_t evidence_bytes_delta = 0;
};

/// Local statistics for one candidate GPAR at one fragment.
struct LocalStats {
  uint64_t supp_r = 0;
  uint64_t supp_qqbar = 0;
  uint64_t usupp = 0;
  bool extendable = false;
  std::vector<NodeId> matches_global;
  // Parent sets handed to this candidate's own extensions (collected only
  // under enable_parent_prune; ascending center indices). Scratch while the
  // worker probes; the message to the coordinator ships the delta forms.
  std::vector<uint32_t> pr_centers;
  std::vector<uint32_t> ant_centers;
  // The lineage sets as shipped: deltas against the pool each side was
  // probed from (anti-monotone subsets — see match_delta.h). The
  // coordinator decodes them against the same pools; DmineStats accounts
  // the bytes this saves over raw center lists.
  MatchSetDelta pr_delta;
  MatchSetDelta ant_delta;
};

// Serialized size of one shipped lineage delta (u8 mode + u32 count +
// count x u32 — the PutMatchSetDelta wire form).
uint64_t DeltaWireBytes(const MatchSetDelta& d) {
  return 1 + 4 + 4 * static_cast<uint64_t>(d.payload.size());
}

}  // namespace

std::vector<CandidateProposal> MergeProposals(
    std::vector<std::vector<CandidateProposal>> per_worker,
    DmineStats* stats) {
  // (parent, ext_ordinal) is an exact identity: GenerateExtensions is
  // deterministic, so two fragments proposing the same key materialized the
  // same grown pattern. Re-sorting by that key recovers the centralized
  // emission order — parents in round-list order, ordinals in generation
  // order — which keeps the downstream dedup/cap stream byte-identical to
  // the centralized path's. This is coordinator critical-path code: sort
  // lightweight indices, not the Gpar-carrying proposals, and move each
  // surviving proposal exactly once.
  size_t total = 0;
  for (const auto& worker : per_worker) total += worker.size();
  std::vector<CandidateProposal> flat;
  flat.reserve(total);
  for (std::vector<CandidateProposal>& worker : per_worker) {
    for (CandidateProposal& p : worker) flat.push_back(std::move(p));
  }
  std::vector<size_t> order(flat.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Stable: among duplicate keys the earliest-worker proposal wins. The
  // checksum tiebreaker keeps equal-checksum duplicates adjacent even when
  // a mismatched proposal shares their key (the double-propose bug state),
  // so the single out.back() comparison below collapses every true
  // duplicate; in healthy runs keys are unique and the tiebreaker is inert.
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (flat[a].parent != flat[b].parent) {
      return flat[a].parent < flat[b].parent;
    }
    if (flat[a].ext_ordinal != flat[b].ext_ordinal) {
      return flat[a].ext_ordinal < flat[b].ext_ordinal;
    }
    return flat[a].structural_hash < flat[b].structural_hash;
  });
  std::vector<CandidateProposal> out;
  out.reserve(flat.size());
  for (size_t idx : order) {
    CandidateProposal& p = flat[idx];
    if (!out.empty() && out.back().parent == p.parent &&
        out.back().ext_ordinal == p.ext_ordinal &&
        out.back().structural_hash == p.structural_hash) {
      out.back().local_evidence += p.local_evidence;
      ++stats->cross_fragment_merged;
    } else {
      // Distinct key — or a checksum mismatch on an equal key, which means
      // the proposals do NOT denote the same grown pattern (an ownership or
      // enumeration bug): keep both rather than silently dropping a rule;
      // the automorphism dedup downstream decides with exact tests.
      out.push_back(std::move(p));
    }
  }
  return out;
}

std::vector<size_t> DedupCandidates(
    const std::vector<Gpar>& fresh, size_t max_keep,
    std::unordered_map<uint64_t, std::vector<Pattern>>* seen_buckets,
    bool bisim_prefilter, DmineStats* stats) {
  std::vector<size_t> kept;
  for (size_t idx = 0; idx < fresh.size() && kept.size() < max_keep; ++idx) {
    const Gpar& g = fresh[idx];
    auto& bucket = (*seen_buckets)[IsomorphismBucketHash(g.pr())];
    bool duplicate = false;
    for (const Pattern& p : bucket) {
      if (bisim_prefilter) {
        ++stats->bisim_tests;
        // Lemma 4: not bisimilar => not automorphic; skip the exact test.
        if (!AreBisimilarDesignated(p, g.pr())) continue;
      }
      ++stats->iso_tests;
      if (AreIsomorphic(p, g.pr(), /*preserve_designated=*/true)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      ++stats->automorphic_merged;
      continue;
    }
    bucket.push_back(g.pr());
    kept.push_back(idx);
  }
  return kept;
}

Result<DmineResult> Dmine(const Graph& g, const Predicate& q,
                          const DmineOptions& options) {
  if (options.num_workers == 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  if (options.k < 2) {
    return Status::InvalidArgument("k must be at least 2");
  }
  if (options.d == 0) {
    return Status::InvalidArgument("d must be at least 1");
  }

  DmineResult result;
  BspRuntime bsp(options.num_workers);

  // --- Setup: candidates, fragments, seed alphabet. -----------------------
  std::vector<NodeId> centers;
  {
    auto span = g.nodes_with_label(q.x_label);
    centers.assign(span.begin(), span.end());
  }
  PartitionOptions popt;
  popt.num_fragments = options.num_workers;
  popt.d = options.d;
  popt.use_fragment_copies = options.use_fragment_copies;
  GPAR_ASSIGN_OR_RETURN(Partitioning parts, PartitionGraph(g, centers, popt));

  std::vector<EdgePatternStat> seeds =
      FrequentEdgePatterns(g, options.seed_edge_limit);

  std::vector<WorkerState> workers(options.num_workers);
  const Pattern pq = q.ToPattern();

  // Shared search-plan store: the coordinator plans each round's patterns
  // once; worker matchers consult it read-only during rounds (patterns are
  // identical across fragments, so per-worker planning is pure redundancy).
  SearchPlanStore plan_store(g);
  if (options.enable_shared_plans) {
    bsp.RunCoordinator([&] {
      PNodeId px = pq.x();
      plan_store.Prepare(pq, {&px, 1});
    });
  }

  // Round 0: per-fragment matcher construction and the q / ~q sets, which
  // "never change and hence are derived once for all". View-backed
  // fragments match directly on global ids over the parent CSR; the copied
  // path (ablation) translates through MatchId.
  bsp.RunRound([&](uint32_t i) {
    WorkerState& w = workers[i];
    w.frag = &parts.fragments[i];
    w.matcher = w.frag->uses_copy()
                    ? std::make_unique<VF2Matcher>(w.frag->copy->graph)
                    : std::make_unique<VF2Matcher>(w.frag->view);
    if (options.enable_shared_plans) w.matcher->set_plan_store(&plan_store);
    const size_t nc = w.frag->centers.size();
    for (size_t c = 0; c < nc; ++c) {
      const NodeId global = w.frag->centers[c];
      const NodeId probe = w.frag->MatchId(global);
      ++w.exists_calls;
      if (w.matcher->ExistsAt(pq, probe)) {
        w.q_centers.push_back(static_cast<uint32_t>(c));
        ++w.supp_q_local;
      } else if (w.frag->HasOutLabelAt(global, q.edge_label)) {
        w.qbar_centers.push_back(static_cast<uint32_t>(c));
        ++w.supp_qbar_local;
      }
    }
  });

  uint64_t supp_q = 0, supp_qbar = 0;
  for (const WorkerState& w : workers) {
    supp_q += w.supp_q_local;
    supp_qbar += w.supp_qbar_local;
  }
  result.stats.supp_q = supp_q;
  result.stats.supp_qbar = supp_qbar;

  // Trivial case: q(x, y) names no one in G — no interesting GPARs exist.
  // Degenerate case: no ~q "negative" pool (every x-candidate with a q-edge
  // already satisfies q). Every discovered rule would have supp(Q~q) = 0 —
  // a trivial logic rule the paper discards — so mining finds nothing, and
  // returning early keeps n_norm = supp_q * supp_qbar = 0 away from the
  // objective's division paths (which are additionally guarded in
  // FPrime/ObjectiveF).
  if (supp_q == 0 || supp_qbar == 0) {
    for (const WorkerState& w : workers) {
      result.stats.exists_calls += w.exists_calls;
      result.stats.plans_shared_hits += w.matcher->plan_store_hits();
    }
    result.stats.plans_prepared = plan_store.patterns_planned();
    result.times = bsp.FinishTiming();
    return result;
  }
  const double n_norm =
      static_cast<double>(supp_q) * static_cast<double>(supp_qbar);

  IncDiv incdiv(options.k, options.lambda, n_norm);
  std::vector<std::shared_ptr<MinedRule>> sigma;  // Σ
  std::unordered_map<uint64_t, std::vector<Pattern>> seen_buckets;

  // M: the rules to extend next round, each carrying its per-fragment match
  // sets — the parent pools the workers restrict to. Round 1 extends the
  // base "rule", bare q(x, y): an antecedent with just the designated nodes
  // and no edges, whose pools are the round-0 q / ~q center sets.
  Pattern base;
  {
    PNodeId x = base.AddNode(q.x_label);
    PNodeId y = base.AddNode(q.y_label);
    base.set_x(x);
    base.set_y(y);
  }
  std::vector<std::shared_ptr<MinedRule>> m_parents;

  // A full-graph matcher for the (rare) antecedent components that do not
  // contain x: their matches can live anywhere in G, so the coordinator
  // checks their satisfiability once per candidate rule.
  VF2Matcher global_matcher(g);

  // With parent pruning, a candidate is only probed at the centers where
  // its parent rule matched (per fragment, per side): anti-monotonicity
  // guarantees every other center fails, so skipping it cannot change any
  // support. Without pruning (ablation), every candidate re-tests the
  // full round-0 pools — the pre-lineage cost structure.
  const bool prune = options.enable_parent_prune;
  const bool worker_gen = options.enable_worker_gen;
  const bool usupp_tight = options.enable_prune_aware_usupp;

  // Each round grows antecedents by one edge (radius capped at d by the
  // generator), up to max_pattern_edges edges — the levelwise structure of
  // DMine with the growth alphabet of seed edge patterns.
  for (uint32_t round = 1;
       round <= options.max_pattern_edges &&
       (round == 1 || !m_parents.empty());
       ++round) {
    // --- Candidate generation: this round's fresh extension stream, in
    // (parent, generation-ordinal) order, before dedup. Both paths produce
    // the identical stream; they differ only in *where* the enumeration
    // work runs.
    std::vector<Gpar> fresh;
    std::vector<size_t> fresh_parent;
    // coordinator_merge_seconds spans every coordinator section from here
    // through dedup/cap: merge-only under worker_gen, full generation +
    // dedup on the centralized path — the share the WorkerGen ablation
    // compares. (Worker rounds in between add nothing to it.)
    const double merge_start = bsp.times().coordinator_seconds;
    if (worker_gen) {
      // Workers: propose extensions from the parents that survive locally
      // (lineage sets from PR 2; round 1 extends the bare predicate from
      // the q-pool). A parent may survive in several fragments; since every
      // surviving fragment would enumerate the identical deterministic
      // extension set, exactly one of them — round-robin over the
      // survivors by parent index, for balance — materializes and ships
      // the proposals. Each worker derives the assignment locally from the
      // broadcast lineage (no extra coordinator round), and only ever
      // generates from parents whose matches live in its own fragment.
      // Without parent lineage (prune off) the survivor set degrades to
      // "fragments with a non-empty q-pool". MergeProposals keeps the
      // duplicate-collapse path regardless, as a tripwire
      // (`cross_fragment_merged` stays 0 unless the assignment ever
      // double-proposes).
      auto proposals = bsp.RunRound([&](uint32_t wi) {
        const WorkerState& w = workers[wi];
        std::vector<CandidateProposal> out;
        // survives(j): fragment j holds centers this parent can extend at.
        // Every extendable parent (and, round 1, the bare predicate, since
        // supp_q > 0 here) survives in at least one fragment; correctness
        // only needs *one deterministic owner per parent*, so a survivor-
        // free parent (impossible by the invariant above) would still be
        // assigned soundly, just without the locality rationale.
        auto owner_of = [&](size_t pi, auto survives) -> uint32_t {
          uint32_t count = 0;
          for (uint32_t j = 0; j < options.num_workers; ++j) {
            if (survives(j)) ++count;
          }
          if (count == 0) {
            return static_cast<uint32_t>(pi % options.num_workers);
          }
          uint32_t target = static_cast<uint32_t>(pi % count);
          for (uint32_t j = 0; j < options.num_workers; ++j) {
            if (!survives(j)) continue;
            if (target == 0) return j;
            --target;
          }
          return 0;  // unreachable: count > 0
        };
        auto propose_from = [&](const Pattern& ant, size_t parent_idx,
                                uint32_t evidence) {
          std::vector<Gpar> ext = GenerateExtensions(
              ant, q.edge_label, options.d, options.max_pattern_edges, seeds);
          for (uint32_t e = 0; e < ext.size(); ++e) {
            CandidateProposal p;
            p.parent = parent_idx;
            p.ext_ordinal = e;
            p.structural_hash = StructuralHash(ext[e].pr());
            p.local_evidence = evidence;
            p.rule = std::move(ext[e]);
            out.push_back(std::move(p));
          }
        };
        auto q_pool = [&](uint32_t j) {
          return !workers[j].q_centers.empty();
        };
        if (round == 1) {
          if (owner_of(0, q_pool) == wi) {
            propose_from(base, kRootParent,
                         static_cast<uint32_t>(w.q_centers.size()));
          }
        } else {
          for (size_t pi = 0; pi < m_parents.size(); ++pi) {
            const uint32_t owner =
                prune ? owner_of(pi,
                                 [&](uint32_t j) {
                                   return !m_parents[pi]
                                               ->frag_pr_centers[j]
                                               .empty();
                                 })
                      : owner_of(pi, q_pool);
            if (owner != wi) continue;
            const size_t evidence = prune
                                        ? m_parents[pi]->frag_pr_centers[wi].size()
                                        : w.q_centers.size();
            propose_from(m_parents[pi]->rule.antecedent(), pi,
                         static_cast<uint32_t>(evidence));
          }
        }
        return out;
      });
      // Coordinator: its generation role shrinks to the cross-fragment
      // (parent, ordinal) merge; automorphism dedup + cap follow below,
      // shared with the centralized path.
      bsp.RunCoordinator([&] {
        if (result.stats.proposals_per_worker.empty()) {
          result.stats.proposals_per_worker.assign(options.num_workers, 0);
        }
        for (uint32_t i = 0; i < options.num_workers; ++i) {
          result.stats.proposals_per_worker[i] += proposals[i].size();
        }
        std::vector<CandidateProposal> merged =
            MergeProposals(std::move(proposals), &result.stats);
        result.stats.candidates_generated += merged.size();
        fresh.reserve(merged.size());
        fresh_parent.reserve(merged.size());
        for (CandidateProposal& p : merged) {
          fresh.push_back(std::move(p.rule));
          fresh_parent.push_back(p.parent);
        }
      });
    } else {
      // Centralized baseline: the coordinator enumerates every parent's
      // extensions itself (the pre-decentralization contract, kept for the
      // Exp-1 A/B ablation).
      bsp.RunCoordinator([&] {
        auto generate_from = [&](const Pattern& ant, size_t parent_idx) {
          std::vector<Gpar> ext = GenerateExtensions(
              ant, q.edge_label, options.d, options.max_pattern_edges, seeds);
          result.stats.candidates_generated += ext.size();
          for (Gpar& e : ext) {
            fresh.push_back(std::move(e));
            fresh_parent.push_back(parent_idx);
          }
        };
        if (round == 1) {
          generate_from(base, kRootParent);
        } else {
          for (size_t pi = 0; pi < m_parents.size(); ++pi) {
            generate_from(m_parents[pi]->rule.antecedent(), pi);
          }
        }
      });
    }

    // --- Coordinator: automorphism dedup + cap + global component check,
    // identical under both generation paths (same fresh stream in, same
    // candidate set out). coordinator_merge_seconds isolates this round's
    // candidate-production share of the coordinator from assembly/incDiv.
    std::vector<Gpar> candidates;
    std::vector<size_t> cand_parent;  // per candidate: m_parents index
    std::vector<char> other_ok;  // per candidate: non-x components matchable
    bsp.RunCoordinator([&] {
      std::vector<size_t> kept = DedupCandidates(
          fresh, options.max_candidates_per_round, &seen_buckets,
          options.enable_bisim_prefilter, &result.stats);
      candidates.reserve(kept.size());
      cand_parent.reserve(kept.size());
      for (size_t idx : kept) {
        candidates.push_back(std::move(fresh[idx]));
        cand_parent.push_back(fresh_parent[idx]);
      }
      result.stats.candidates_verified += candidates.size();
      other_ok.assign(candidates.size(), 1);
      for (size_t ci = 0; ci < candidates.size(); ++ci) {
        for (const Pattern& comp : candidates[ci].other_components()) {
          if (!global_matcher.Exists(comp)) {
            other_ok[ci] = 0;
            break;
          }
        }
      }
    });
    result.stats.coordinator_merge_seconds +=
        bsp.times().coordinator_seconds - merge_start;
    if (candidates.empty()) break;

    // Plan this round's patterns once into the shared store (outside the
    // merge-seconds window: planning is not part of the generation-path
    // A/B the WorkerGen ablation measures). Workers then probe P_R and the
    // antecedent's x-component anchored at x with store-served plans.
    if (options.enable_shared_plans) {
      bsp.RunCoordinator([&] {
        for (const Gpar& r : candidates) {
          PNodeId prx = r.pr().x();
          plan_store.Prepare(r.pr(), {&prx, 1});
          PNodeId qx = r.x_component().x();
          plan_store.Prepare(r.x_component(), {&qx, 1});
        }
      });
    }

    // --- Workers: local support counting over owned centers. -------------
    std::vector<std::vector<LocalStats>> local(options.num_workers);
    bsp.RunRound([&](uint32_t i) {
      WorkerState& w = workers[i];
      local[i].assign(candidates.size(), {});
      for (size_t ci = 0; ci < candidates.size(); ++ci) {
        const Gpar& r = candidates[ci];
        LocalStats& ls = local[i][ci];
        const MinedRule* parent = nullptr;
        if (prune && cand_parent[ci] != kRootParent) {
          parent = m_parents[cand_parent[ci]].get();
        }
        // P_R matches live inside the q-match pool (or the parent's
        // surviving subset of it).
        std::span<const uint32_t> pr_pool =
            parent ? std::span<const uint32_t>(parent->frag_pr_centers[i])
                   : std::span<const uint32_t>(w.q_centers);
        w.centers_skipped += w.q_centers.size() - pr_pool.size();
        for (uint32_t c : pr_pool) {
          const NodeId global = w.frag->centers[c];
          ++w.exists_calls;
          if (w.matcher->ExistsAt(r.pr(), w.frag->MatchId(global))) {
            ++ls.supp_r;
            ls.matches_global.push_back(global);
            // Anti-monotonicity makes supp_r a sound Usupp bound: any
            // extension matches a subset of these centers. The prune-aware
            // tightening (flagged) additionally requires the center's N_d
            // to still have room to grow.
            if (!usupp_tight || w.frag->center_hops_available[c] > 0) {
              ++ls.usupp;
            }
            ls.extendable = true;
            if (prune) ls.pr_centers.push_back(c);
          }
        }
        // Antecedent membership: x-component locally (exact within the
        // d-hop fragment), remaining components pre-checked globally.
        std::span<const uint32_t> ant_pool =
            parent ? std::span<const uint32_t>(parent->frag_ant_centers[i])
                   : std::span<const uint32_t>(w.qbar_centers);
        if (other_ok[ci]) {
          w.centers_skipped += w.qbar_centers.size() - ant_pool.size();
          for (uint32_t c : ant_pool) {
            const NodeId probe = w.frag->MatchId(w.frag->centers[c]);
            ++w.exists_calls;
            if (w.matcher->ExistsAt(r.x_component(), probe)) {
              ++ls.supp_qqbar;
              if (prune) ls.ant_centers.push_back(c);
            }
          }
        }
        if (prune) {
          // Ship the lineage as deltas against the probed pools (the
          // match-set-delta BSP message); the coordinator decodes against
          // the identical pools at assembly.
          ls.pr_delta = EncodeMatchSet(ls.pr_centers, pr_pool);
          ls.ant_delta = EncodeMatchSet(ls.ant_centers, ant_pool);
          w.evidence_bytes_full += FullEncodedBytes(ls.pr_centers.size()) +
                                   FullEncodedBytes(ls.ant_centers.size());
          w.evidence_bytes_delta +=
              DeltaWireBytes(ls.pr_delta) + DeltaWireBytes(ls.ant_delta);
          ls.pr_centers = {};
          ls.ant_centers = {};
        }
      }
    });

    // --- Coordinator: assemble, filter, diversify, reduce. ---------------
    std::vector<std::shared_ptr<MinedRule>> delta;
    bsp.RunCoordinator([&] {
      for (size_t ci = 0; ci < candidates.size(); ++ci) {
        auto rule = std::make_shared<MinedRule>();
        rule->rule = candidates[ci];
        uint64_t usupp = 0;
        const MinedRule* parent = nullptr;
        if (prune && cand_parent[ci] != kRootParent) {
          parent = m_parents[cand_parent[ci]].get();
        }
        if (prune) {
          rule->frag_pr_centers.resize(options.num_workers);
          rule->frag_ant_centers.resize(options.num_workers);
        }
        for (uint32_t i = 0; i < options.num_workers; ++i) {
          LocalStats& ls = local[i][ci];
          rule->supp += ls.supp_r;
          rule->supp_qqbar += ls.supp_qqbar;
          usupp += ls.usupp;
          rule->extendable = rule->extendable || ls.extendable;
          rule->matches.insert(rule->matches.end(), ls.matches_global.begin(),
                               ls.matches_global.end());
          if (prune) {
            // Decode the shipped lineage deltas against the same pools the
            // worker encoded them from. The round trip is exact (the worker
            // encoded a true subset), so lineage is byte-identical to the
            // pre-delta raw lists.
            std::span<const uint32_t> pr_pool =
                parent ? std::span<const uint32_t>(parent->frag_pr_centers[i])
                       : std::span<const uint32_t>(workers[i].q_centers);
            std::span<const uint32_t> ant_pool =
                parent ? std::span<const uint32_t>(parent->frag_ant_centers[i])
                       : std::span<const uint32_t>(workers[i].qbar_centers);
            auto pr = DecodeMatchSet(ls.pr_delta, pr_pool);
            auto ant = DecodeMatchSet(ls.ant_delta, ant_pool);
            rule->frag_pr_centers[i] = std::move(pr).value();
            rule->frag_ant_centers[i] = std::move(ant).value();
          }
        }
        std::sort(rule->matches.begin(), rule->matches.end());
        rule->usupp = usupp;
        rule->uconf_plus = UConfPlus(usupp, supp_qbar, supp_q);
        if (rule->supp < options.sigma) continue;
        if (rule->supp_qqbar == 0) {
          // Trivial "logic rule": holds on all of Q(x, G); discarded per
          // the paper's trivial-GPAR handling.
          ++result.stats.trivial_discarded;
          continue;
        }
        rule->conf =
            BayesFactorConf(rule->supp, supp_qbar, rule->supp_qqbar, supp_q);
        delta.push_back(std::move(rule));
      }
      result.stats.accepted += delta.size();
      sigma.insert(sigma.end(), delta.begin(), delta.end());

      if (options.enable_incremental_div) {
        incdiv.AddRound(delta, sigma);
        if (options.enable_reduction_rules) {
          ReductionStats rs = ApplyReductionRules(
              sigma, delta, incdiv.MinPairFPrime(), options.lambda, n_norm,
              options.k,
              [&](const MinedRule* r) { return incdiv.InQueue(r); });
          result.stats.pruned_by_reduction += rs.pruned_sigma + rs.pruned_delta;
        }
      } else {
        // DMineno recomputes the diversified top-k from scratch every round
        // instead of maintaining it incrementally — the cost the paper's
        // Exp-1 ablation measures.
        result.topk =
            FullDiversify(sigma, options.k, options.lambda, n_norm);
      }

      // Next round's M: extendable, unpruned survivors of this round. The
      // outgoing parents' match sets have served their one round; release
      // them (Σ keeps the rules themselves alive for diversification).
      for (const auto& p : m_parents) {
        p->frag_pr_centers = {};
        p->frag_ant_centers = {};
      }
      m_parents.clear();
      for (const auto& r : delta) {
        if (!r->extendable || r->pruned ||
            r->rule.antecedent().num_edges() >= options.max_pattern_edges) {
          r->frag_pr_centers = {};
          r->frag_ant_centers = {};
          continue;
        }
        m_parents.push_back(r);
      }
    });
  }
  for (const auto& p : m_parents) {
    p->frag_pr_centers = {};
    p->frag_ant_centers = {};
  }

  bsp.RunCoordinator([&] {
    if (options.enable_incremental_div) {
      result.topk = incdiv.TopK();
      result.objective = incdiv.Objective();
    } else {
      // DMineno path: diversify the full pool from scratch.
      result.topk =
          FullDiversify(sigma, options.k, options.lambda, n_norm);
      std::vector<double> confs;
      std::vector<const std::vector<NodeId>*> sets;
      for (const auto& r : result.topk) {
        confs.push_back(r->conf);
        sets.push_back(&r->matches);
      }
      result.objective =
          ObjectiveF(confs, sets, options.lambda, n_norm, options.k);
    }
  });

  for (const WorkerState& w : workers) {
    result.stats.exists_calls += w.exists_calls;
    result.stats.centers_skipped_by_parent += w.centers_skipped;
    result.stats.plans_shared_hits += w.matcher->plan_store_hits();
    result.stats.evidence_bytes_full += w.evidence_bytes_full;
    result.stats.evidence_bytes_delta += w.evidence_bytes_delta;
  }
  result.stats.plans_prepared = plan_store.patterns_planned();
  result.times = bsp.FinishTiming();
  return result;
}

}  // namespace gpar
