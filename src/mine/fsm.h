#ifndef GPAR_MINE_FSM_H_
#define GPAR_MINE_FSM_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "pattern/pattern.h"

namespace gpar {

/// Options for the frequent-subgraph miner.
struct FsmOptions {
  uint64_t min_support = 10;   ///< MNI support threshold τ
  uint32_t max_edges = 3;      ///< pattern growth cap
  size_t seed_edge_limit = 10; ///< growth alphabet size
  size_t max_patterns = 64;    ///< result cap (highest support kept)
  uint64_t embedding_cap = 100000;  ///< per-pattern enumeration budget
};

/// A frequent pattern with its minimum-image (MNI) support.
struct FrequentPattern {
  Pattern pattern;
  uint64_t support = 0;
};

/// GraMi-style frequent subgraph mining in a single large graph [13]:
/// levelwise pattern growth with minimum-image-based support [7] (the
/// anti-monotonic measure for single graphs).
///
/// This is the comparator for the paper's Exp-2 case study: frequent
/// patterns found this way "are mostly cycles of users" and reveal little
/// about entity associations, unlike confidence-ranked GPARs.
std::vector<FrequentPattern> MineFrequentSubgraphs(const Graph& g,
                                                   const FsmOptions& options);

}  // namespace gpar

#endif  // GPAR_MINE_FSM_H_
