#include "mine/reduction.h"

#include <algorithm>

namespace gpar {

double UConfPlus(uint64_t usupp_total, uint64_t supp_qbar, uint64_t supp_q) {
  if (supp_q == 0) return 0;
  return static_cast<double>(usupp_total) * static_cast<double>(supp_qbar) /
         static_cast<double>(supp_q);
}

ReductionStats ApplyReductionRules(
    const std::vector<std::shared_ptr<MinedRule>>& sigma,
    const std::vector<std::shared_ptr<MinedRule>>& delta, double fprime_min,
    double lambda, double n_norm, uint32_t k,
    const std::function<bool(const MinedRule*)>& in_queue) {
  ReductionStats stats;
  if (k <= 1 || n_norm <= 0) return stats;
  const double conf_coeff = (1.0 - lambda) / (n_norm * (k - 1));
  const double div_max = 2.0 * lambda / (k - 1);  // diff <= 1

  bool changed = true;
  while (changed) {
    changed = false;

    double max_uconf_delta = 0;
    for (const auto& r : delta) {
      if (!r->pruned) max_uconf_delta = std::max(max_uconf_delta, r->uconf_plus);
    }
    double max_conf_sigma = 0;
    for (const auto& r : sigma) {
      if (!r->pruned) max_conf_sigma = std::max(max_conf_sigma, r->conf);
    }

    // Rule (1): Σ members whose best possible pairing cannot beat F'm.
    for (const auto& r : sigma) {
      if (r->pruned || in_queue(r.get())) continue;
      double bound = conf_coeff * (r->conf + max_uconf_delta) + div_max;
      if (bound <= fprime_min) {
        r->pruned = true;
        ++stats.pruned_sigma;
        changed = true;
      }
    }

    // Rule (2): ΔE members not worth extending.
    for (const auto& r : delta) {
      if (r->pruned) continue;
      bool prune = !r->extendable;
      if (!prune) {
        double bound = conf_coeff * (r->uconf_plus + max_conf_sigma) + div_max;
        prune = bound <= fprime_min;
      }
      if (prune) {
        // Mark extension-pruned; the rule itself may stay in Σ for pairing
        // if it is merely unextendable. Only the bound-based prune removes
        // it from future consideration entirely.
        if (!r->extendable) {
          // handled by DMine when building M; nothing to mark here
        } else if (!in_queue(r.get())) {
          r->pruned = true;
          ++stats.pruned_delta;
          changed = true;
        }
      }
    }
  }
  return stats;
}

}  // namespace gpar
