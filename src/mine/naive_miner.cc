#include "mine/naive_miner.h"

#include <algorithm>
#include <map>
#include <string>

#include "graph/neighborhood.h"
#include "match/matcher.h"
#include "mine/inc_div.h"
#include "pattern/automorphism.h"
#include "pattern/pattern_ops.h"
#include "rule/diversity.h"
#include "rule/metrics.h"

namespace gpar {

Result<NaiveMineResult> NaiveMine(const Graph& g, const Predicate& q,
                                  const DmineOptions& options) {
  NaiveMineResult result;
  VF2Matcher matcher(g);
  QStats stats = ComputeQStats(matcher, q);
  if (stats.supp_q == 0) return result;
  const double n_norm = static_cast<double>(stats.supp_q) *
                        static_cast<double>(stats.supp_qbar);

  std::vector<EdgePatternStat> seeds =
      FrequentEdgePatterns(g, options.seed_edge_limit);

  Pattern base;
  {
    PNodeId x = base.AddNode(q.x_label);
    PNodeId y = base.AddNode(q.y_label);
    base.set_x(x);
    base.set_y(y);
  }
  std::vector<Pattern> frontier{base};
  std::map<std::string, std::vector<Pattern>> seen;

  for (uint32_t round = 1;
       round <= options.max_pattern_edges && !frontier.empty(); ++round) {
    std::vector<Gpar> candidates;
    for (const Pattern& ant : frontier) {
      std::vector<Gpar> ext = GenerateExtensions(
          ant, q.edge_label, options.d, options.max_pattern_edges, seeds);
      for (Gpar& e : ext) {
        std::string key = IsomorphismBucketKey(e.pr());
        auto& bucket = seen[key];
        bool dup = false;
        for (const Pattern& p : bucket) {
          if (AreIsomorphic(p, e.pr(), /*preserve_designated=*/true)) {
            dup = true;
            break;
          }
        }
        if (dup) continue;
        bucket.push_back(e.pr());
        candidates.push_back(std::move(e));
      }
    }
    if (candidates.size() > options.max_candidates_per_round) {
      candidates.resize(options.max_candidates_per_round);
    }

    frontier.clear();
    for (const Gpar& cand : candidates) {
      auto rule = std::make_shared<MinedRule>();
      rule->rule = cand;
      for (NodeId v : stats.q_matches) {
        if (matcher.ExistsAt(cand.pr(), v)) {
          rule->matches.push_back(v);
          ++rule->supp;
          ++rule->usupp;  // supp itself is the sound extension bound
          rule->extendable = true;
        }
      }
      for (NodeId v : stats.qbar_nodes) {
        if (matcher.ExistsAt(cand.antecedent(), v)) ++rule->supp_qqbar;
      }
      std::sort(rule->matches.begin(), rule->matches.end());
      if (rule->supp < options.sigma) continue;
      if (rule->supp_qqbar == 0) continue;  // trivial logic rule
      rule->conf = BayesFactorConf(rule->supp, stats.supp_qbar,
                                   rule->supp_qqbar, stats.supp_q);
      if (rule->extendable &&
          rule->rule.antecedent().num_edges() < options.max_pattern_edges) {
        frontier.push_back(rule->rule.antecedent());
      }
      result.all_rules.push_back(std::move(rule));
    }
  }

  result.topk =
      FullDiversify(result.all_rules, options.k, options.lambda, n_norm);
  std::vector<double> confs;
  std::vector<const std::vector<NodeId>*> sets;
  for (const auto& r : result.topk) {
    confs.push_back(r->conf);
    sets.push_back(&r->matches);
  }
  result.objective =
      ObjectiveF(confs, sets, options.lambda, n_norm, options.k);
  return result;
}

}  // namespace gpar
