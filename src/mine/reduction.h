#ifndef GPAR_MINE_REDUCTION_H_
#define GPAR_MINE_REDUCTION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mine/mined_rule.h"

namespace gpar {

/// Statistics from one application of the Lemma-3 reduction rules.
struct ReductionStats {
  size_t pruned_sigma = 0;
  size_t pruned_delta = 0;
};

/// Applies the paper's reduction rules (Lemma 3) to fixpoint, marking
/// `pruned` on rules that can no longer contribute to L_k:
///
///  (1) R ∈ Σ is pruned when
///      (1-λ)/(N(k-1)) (conf(R) + maxUconf+(ΔE)) + 2λ/(k-1) <= F'm;
///  (2) R_j ∈ ΔE is pruned (not extended further) when it is not extendable
///      or (1-λ)/(N(k-1)) (Uconf+(R_j) + max conf(Σ)) + 2λ/(k-1) <= F'm.
///
/// Both bounds shrink as rules are removed (max conf(Σ) and maxUconf+(ΔE)
/// are monotonically decreasing), so the rules are reapplied until nothing
/// changes. Rules currently in the top-k queue are exempt (`in_queue`):
/// they already contribute to L_k.
ReductionStats ApplyReductionRules(
    const std::vector<std::shared_ptr<MinedRule>>& sigma,
    const std::vector<std::shared_ptr<MinedRule>>& delta, double fprime_min,
    double lambda, double n_norm, uint32_t k,
    const std::function<bool(const MinedRule*)>& in_queue);

/// Uconf+(R): the upper bound on the confidence of any extension of R,
/// assembled from per-fragment Usupp values (Section 4.2):
///   Uconf+(R) = (Σ_i Usupp_i) * supp(~q, G) / (1 * supp(q, G)).
double UConfPlus(uint64_t usupp_total, uint64_t supp_qbar, uint64_t supp_q);

}  // namespace gpar

#endif  // GPAR_MINE_REDUCTION_H_
