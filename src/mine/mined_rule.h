#ifndef GPAR_MINE_MINED_RULE_H_
#define GPAR_MINE_MINED_RULE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "rule/gpar.h"

namespace gpar {

/// A discovered GPAR with its global statistics, as assembled by the DMine
/// coordinator from worker messages.
struct MinedRule {
  Gpar rule;
  uint64_t supp = 0;         ///< supp(R, G)
  uint64_t supp_qqbar = 0;   ///< supp(Q~q, G)
  double conf = 0;           ///< BF/LCWA confidence
  std::vector<NodeId> matches;  ///< P_R(x, G), global ids, sorted (for diff)
  bool extendable = false;   ///< some match still has unexplored hops
  uint64_t usupp = 0;        ///< matches with expansion room (Lemma 3)
  double uconf_plus = 0;     ///< Uconf+(R): confidence bound for extensions
  bool pruned = false;       ///< removed from Σ/ΔE by the reduction rules

  /// Per-fragment (parallel to the DMine worker array) local-center indices
  /// where P_R matched. Anti-monotonicity makes this the exact search pool
  /// for every extension of this rule: a child's P_R contains the parent's
  /// P_R, so the child can only match where the parent did. Doubly used by
  /// decentralized candidate generation (`enable_worker_gen`): the rule
  /// "survives" in fragment i iff frag_pr_centers[i] is non-empty, exactly
  /// one surviving fragment owns (proposes) the rule's extensions, and the
  /// owner ships its list's size as the proposal's local support evidence.
  /// The coordinator clears these once the rule's children have been
  /// evaluated.
  std::vector<std::vector<uint32_t>> frag_pr_centers;
  /// Same lineage for the negative side: per-fragment ~q-pool center indices
  /// where the antecedent's x-component matched (the supp(Q~q) pool).
  std::vector<std::vector<uint32_t>> frag_ant_centers;
};

}  // namespace gpar

#endif  // GPAR_MINE_MINED_RULE_H_
