#include "mine/multi_dmine.h"

#include <set>
#include <tuple>

#include "graph/stats.h"

namespace gpar {

Result<MultiDmineResult> DmineForPredicates(
    const Graph& g, const std::vector<Predicate>& predicates,
    const DmineOptions& options) {
  MultiDmineResult out;
  std::set<std::tuple<LabelId, LabelId, LabelId>> seen;
  for (const Predicate& q : predicates) {
    if (!seen.insert({q.x_label, q.edge_label, q.y_label}).second) continue;
    GPAR_ASSIGN_OR_RETURN(DmineResult r, Dmine(g, q, options));
    out.per_predicate.emplace_back(q, std::move(r));
  }
  return out;
}

Result<MultiDmineResult> DmineAuto(const Graph& g, const DmineOptions& options,
                                   size_t num_predicates,
                                   LabelId edge_label_filter) {
  std::vector<Predicate> predicates;
  for (const EdgePatternStat& s : FrequentEdgePatterns(g)) {
    if (edge_label_filter != kNoLabel && s.edge_label != edge_label_filter) {
      continue;
    }
    predicates.push_back({s.src_label, s.edge_label, s.dst_label});
    if (predicates.size() >= num_predicates) break;
  }
  if (predicates.empty()) {
    return Status::NotFound("no candidate predicates in the graph");
  }
  return DmineForPredicates(g, predicates, options);
}

}  // namespace gpar
