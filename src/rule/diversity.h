#ifndef GPAR_RULE_DIVERSITY_H_
#define GPAR_RULE_DIVERSITY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gpar {

/// diff(R1, R2): Jaccard distance of the rules' match sets P_R(x, G)
/// (Section 4.1). Inputs must be sorted. Two empty sets have distance 0
/// (identical social groups).
double JaccardDistance(const std::vector<NodeId>& a_sorted,
                       const std::vector<NodeId>& b_sorted);

/// The diversification objective F(L_k) of Section 4.1 (max-sum
/// diversification, after [19]):
///   (1-λ) Σ_i conf(R_i)/N  +  (2λ/(k-1)) Σ_{i<j} diff(R_i, R_j)
/// `N` normalizes confidence: N = supp(q, G) * supp(~q, G).
double ObjectiveF(const std::vector<double>& confs,
                  const std::vector<const std::vector<NodeId>*>& match_sets,
                  double lambda, double n_norm, uint32_t k);

/// The pairwise objective used by incDiv (Section 4.2):
///   F'(R, R') = (1-λ)/(N(k-1)) (conf(R)+conf(R')) + (2λ/(k-1)) diff(R, R').
double FPrime(double conf1, double conf2, double diff, double lambda,
              double n_norm, uint32_t k);

}  // namespace gpar

#endif  // GPAR_RULE_DIVERSITY_H_
