#include "rule/diversity.h"

#include <algorithm>
#include <cmath>

namespace gpar {

double JaccardDistance(const std::vector<NodeId>& a_sorted,
                       const std::vector<NodeId>& b_sorted) {
  if (a_sorted.empty() && b_sorted.empty()) return 0;
  size_t inter = 0;
  size_t i = 0, j = 0;
  while (i < a_sorted.size() && j < b_sorted.size()) {
    if (a_sorted[i] < b_sorted[j]) {
      ++i;
    } else if (a_sorted[i] > b_sorted[j]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  size_t uni = a_sorted.size() + b_sorted.size() - inter;
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

double ObjectiveF(const std::vector<double>& confs,
                  const std::vector<const std::vector<NodeId>*>& match_sets,
                  double lambda, double n_norm, uint32_t k) {
  double conf_sum = 0;
  for (double c : confs) conf_sum += c;
  double diff_sum = 0;
  for (size_t i = 0; i < match_sets.size(); ++i) {
    for (size_t j = i + 1; j < match_sets.size(); ++j) {
      diff_sum += JaccardDistance(*match_sets[i], *match_sets[j]);
    }
  }
  // A degenerate normalizer (supp_q or supp_~q = 0 makes N = 0) or
  // non-finite confidence sum (trivial logic rules have conf = +inf) zeroes
  // the confidence term instead of emitting NaN/inf — in particular
  // (1-λ)·inf is NaN at λ = 1. Ranking then falls back to diversity alone.
  double conf_term = 0;
  if (n_norm > 0 && lambda < 1.0 && std::isfinite(conf_sum)) {
    conf_term = (1.0 - lambda) * conf_sum / n_norm;
  }
  double div_term = k > 1 ? 2.0 * lambda / (k - 1) * diff_sum : 0;
  return conf_term + div_term;
}

double FPrime(double conf1, double conf2, double diff, double lambda,
              double n_norm, uint32_t k) {
  if (k <= 1) return 0;
  // Same degeneracy guards as ObjectiveF's confidence term: with N = 0 the
  // diversity term still ranks pairs (the old code returned a flat 0 here,
  // collapsing the queue order entirely).
  double conf_term = 0;
  const double conf_sum = conf1 + conf2;
  if (n_norm > 0 && lambda < 1.0 && std::isfinite(conf_sum)) {
    conf_term = (1.0 - lambda) / (n_norm * (k - 1)) * conf_sum;
  }
  return conf_term + 2.0 * lambda / (k - 1) * diff;
}

}  // namespace gpar
