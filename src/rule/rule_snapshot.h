#ifndef GPAR_RULE_RULE_SNAPSHOT_H_
#define GPAR_RULE_RULE_SNAPSHOT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rule/gpar.h"
#include "rule/rule_evidence.h"

namespace gpar {

/// One stored rule: the GPAR plus the mining metadata a server needs to
/// rank/filter without re-evaluating (supp(R, G) and the BF/LCWA confidence
/// at mining time). Metadata is advisory — live confidences on a patched
/// graph come from `RuleServer::IdentifyAll`.
struct RuleRecord {
  Gpar rule;
  uint64_t supp = 0;
  double conf = 0;

  friend bool operator==(const RuleRecord&, const RuleRecord&) = default;
};

/// Versioned, checksummed binary snapshot of a mined rule set — the second
/// half of the serving subsystem's at-rest format (graph_snapshot.h holds
/// the graph half and the framing conventions).
///
/// Layout (little-endian):
/// ```
/// u64 magic "GPARRULE"   u32 version   u64 payload_size   u64 fnv1a64
/// payload:
///   u32 rule_count, rule_count x {
///     u64 supp, f64 conf (IEEE-754 bits),
///     u32 text_len, bytes   // Gpar::Serialize — the pattern codec block
///   }
///   -- version 2 only: the match-evidence section --
///   setup: 3 x string (x/edge/y label names), u32 k, u32 d, u64 sigma,
///          f64 lambda, u32 max_pattern_edges, u64 seed_edge_limit,
///          u64 max_candidates_per_round, u32 bool_flags
///   u32 q_pool_count + values, u32 qbar_pool_count + values
///   u32 entry_count, entry_count x {
///     u32 text_len + bytes (Gpar::Serialize), u32 parent, u8 ant_probed,
///     pr delta, ant delta   // match_delta.h wire form, decoded against
///                           // the parent entry's sets (root: the pools)
///   }
/// ```
/// Patterns ride in the pattern codec's text form, so records are
/// self-describing (label *names*, not dictionary ids) and a rule snapshot
/// can be loaded against any graph: `ReadRuleSetSnapshot` interns the names
/// through the target graph's dictionary. Write -> read -> write is
/// byte-identical (the codec's text form is canonical for a given rule).
///
/// Version 1 (no evidence) remains the write format for plain rule sets —
/// v1 files stay byte-identical to earlier releases — and both readers
/// accept both versions.
Status WriteRuleSetSnapshot(const std::vector<RuleRecord>& rules,
                            const Interner& labels, std::ostream& os);
Status WriteRuleSetSnapshotFile(const std::vector<RuleRecord>& rules,
                                const Interner& labels,
                                const std::string& path);

/// A decoded snapshot of either version: the records, plus the evidence
/// section when the file carried one (v2).
struct RuleSetSnapshot {
  std::vector<RuleRecord> rules;
  bool has_evidence = false;
  RuleSetEvidence evidence;
};

/// Writes a v2 snapshot: the rule records plus `evidence`. Evidence match
/// sets are delta-encoded against their parent entry (entries must be in
/// evaluation order — every `parent` index earlier than its child — which
/// is how `RuleMaintainer::ExportEvidence` emits them).
Status WriteRuleSetSnapshotV2(const std::vector<RuleRecord>& rules,
                              const RuleSetEvidence& evidence,
                              const Interner& labels, std::ostream& os);
Status WriteRuleSetSnapshotV2File(const std::vector<RuleRecord>& rules,
                                  const RuleSetEvidence& evidence,
                                  const Interner& labels,
                                  const std::string& path);

/// Reads either version; a v2 file's evidence section is decoded and
/// validated (parent ordering, delta reconstruction), not skipped.
Result<RuleSetSnapshot> ReadRuleSetSnapshotAny(std::istream& is,
                                               Interner* labels);
Result<RuleSetSnapshot> ReadRuleSetSnapshotAnyFile(const std::string& path,
                                                   Interner* labels);

/// Records-only readers (accept both versions; v2 evidence is decoded for
/// validation, then dropped). The PR 5/6 loading API.
Result<std::vector<RuleRecord>> ReadRuleSetSnapshot(std::istream& is,
                                                    Interner* labels);
Result<std::vector<RuleRecord>> ReadRuleSetSnapshotFile(
    const std::string& path, Interner* labels);

}  // namespace gpar

#endif  // GPAR_RULE_RULE_SNAPSHOT_H_
