#ifndef GPAR_RULE_RULE_SNAPSHOT_H_
#define GPAR_RULE_RULE_SNAPSHOT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rule/gpar.h"

namespace gpar {

/// One stored rule: the GPAR plus the mining metadata a server needs to
/// rank/filter without re-evaluating (supp(R, G) and the BF/LCWA confidence
/// at mining time). Metadata is advisory — live confidences on a patched
/// graph come from `RuleServer::IdentifyAll`.
struct RuleRecord {
  Gpar rule;
  uint64_t supp = 0;
  double conf = 0;

  friend bool operator==(const RuleRecord&, const RuleRecord&) = default;
};

/// Versioned, checksummed binary snapshot of a mined rule set — the second
/// half of the serving subsystem's at-rest format (graph_snapshot.h holds
/// the graph half and the framing conventions).
///
/// Layout (little-endian):
/// ```
/// u64 magic "GPARRULE"   u32 version=1   u64 payload_size   u64 fnv1a64
/// payload:
///   u32 rule_count, rule_count x {
///     u64 supp, f64 conf (IEEE-754 bits),
///     u32 text_len, bytes   // Gpar::Serialize — the pattern codec block
///   }
/// ```
/// Patterns ride in the pattern codec's text form, so records are
/// self-describing (label *names*, not dictionary ids) and a rule snapshot
/// can be loaded against any graph: `ReadRuleSetSnapshot` interns the names
/// through the target graph's dictionary. Write -> read -> write is
/// byte-identical (the codec's text form is canonical for a given rule).
Status WriteRuleSetSnapshot(const std::vector<RuleRecord>& rules,
                            const Interner& labels, std::ostream& os);
Status WriteRuleSetSnapshotFile(const std::vector<RuleRecord>& rules,
                                const Interner& labels,
                                const std::string& path);

Result<std::vector<RuleRecord>> ReadRuleSetSnapshot(std::istream& is,
                                                    Interner* labels);
Result<std::vector<RuleRecord>> ReadRuleSetSnapshotFile(
    const std::string& path, Interner* labels);

}  // namespace gpar

#endif  // GPAR_RULE_RULE_SNAPSHOT_H_
