#include "rule/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace gpar {

QStats ComputeQStats(Matcher& m, const Predicate& q) {
  QStats stats;
  const Graph& g = m.graph();
  Pattern pq = q.ToPattern();
  stats.q_matches = m.Images(pq, pq.x());
  std::sort(stats.q_matches.begin(), stats.q_matches.end());
  stats.supp_q = stats.q_matches.size();

  for (NodeId v : g.nodes_with_label(q.x_label)) {
    if (!g.HasOutLabel(v, q.edge_label)) continue;  // unknown under LCWA
    if (std::binary_search(stats.q_matches.begin(), stats.q_matches.end(),
                           v)) {
      continue;  // positive
    }
    stats.qbar_nodes.push_back(v);
  }
  std::sort(stats.qbar_nodes.begin(), stats.qbar_nodes.end());
  stats.supp_qbar = stats.qbar_nodes.size();
  return stats;
}

LcwaCase ClassifyLcwa(const Graph& g, const Predicate& q, NodeId v,
                      const QStats& stats) {
  if (std::binary_search(stats.q_matches.begin(), stats.q_matches.end(), v)) {
    return LcwaCase::kPositive;
  }
  if (g.HasOutLabel(v, q.edge_label)) return LcwaCase::kNegative;
  return LcwaCase::kUnknown;
}

double BayesFactorConf(uint64_t supp_r, uint64_t supp_qbar,
                       uint64_t supp_qqbar, uint64_t supp_q) {
  // "Fixed under incompatibility" [26, 31]: a rule with no support has
  // confidence 0 regardless of the denominator.
  if (supp_r == 0) return 0;
  if (supp_qqbar == 0 || supp_q == 0) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(supp_r) * static_cast<double>(supp_qbar) /
         (static_cast<double>(supp_qqbar) * static_cast<double>(supp_q));
}

GparEval EvaluateGpar(Matcher& m, const Gpar& r, const QStats& stats,
                      const EvalOptions& options) {
  GparEval eval;
  eval.trivial_no_q = stats.supp_q == 0;

  // P_R matches: P_R contains the consequent edge, so every x-match of P_R
  // is an x-match of P_q; probing only q_matches is exact, not a heuristic.
  for (NodeId v : stats.q_matches) {
    if (m.ExistsAt(r.pr(), v)) eval.pr_matches.push_back(v);
  }
  std::sort(eval.pr_matches.begin(), eval.pr_matches.end());
  eval.supp_r = eval.pr_matches.size();

  // Q~q: antecedent matches among the ~q ("negative") pool.
  for (NodeId v : stats.qbar_nodes) {
    if (m.ExistsAt(r.antecedent(), v)) ++eval.supp_qqbar;
  }
  eval.trivial_logic_rule = eval.supp_qqbar == 0;

  eval.conf =
      BayesFactorConf(eval.supp_r, stats.supp_qbar, eval.supp_qqbar,
                      stats.supp_q);
  eval.pca_conf = eval.supp_qqbar == 0
                      ? std::numeric_limits<double>::infinity()
                      : static_cast<double>(eval.supp_r) /
                            static_cast<double>(eval.supp_qqbar);

  if (options.compute_antecedent_images) {
    eval.antecedent_matches = m.Images(r.antecedent(), r.antecedent().x());
    std::sort(eval.antecedent_matches.begin(), eval.antecedent_matches.end());
    eval.supp_q_ant = eval.antecedent_matches.size();
    eval.conventional_conf =
        eval.supp_q_ant == 0
            ? 0
            : static_cast<double>(eval.supp_r) /
                  static_cast<double>(eval.supp_q_ant);
  }
  return eval;
}

uint64_t MinImageSupport(Matcher& m, const Pattern& p,
                         uint64_t embedding_cap) {
  // The callback sees the multiplicity-expanded pattern; minimum image
  // support is computed over its nodes.
  std::vector<std::unordered_set<NodeId>> images;
  m.Enumerate(
      p, {},
      [&](std::span<const NodeId> mapping) {
        if (images.empty()) images.resize(mapping.size());
        for (size_t i = 0; i < mapping.size(); ++i) {
          images[i].insert(mapping[i]);
        }
        return true;
      },
      embedding_cap);
  if (images.empty()) return 0;
  uint64_t min_image = std::numeric_limits<uint64_t>::max();
  for (const auto& s : images) {
    min_image = std::min<uint64_t>(min_image, s.size());
  }
  return min_image;
}

double ImageBasedConf(Matcher& m, const Gpar& r, const QStats& stats,
                      uint64_t supp_qqbar, uint64_t embedding_cap) {
  uint64_t isupp_r = MinImageSupport(m, r.pr(), embedding_cap);
  Pattern pq = r.predicate().ToPattern();
  uint64_t isupp_q = MinImageSupport(m, pq, embedding_cap);
  return BayesFactorConf(isupp_r, stats.supp_qbar, supp_qqbar, isupp_q);
}

}  // namespace gpar
