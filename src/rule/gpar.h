#ifndef GPAR_RULE_GPAR_H_
#define GPAR_RULE_GPAR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "pattern/pattern.h"

namespace gpar {

/// The consequent predicate q(x, y) of a GPAR: an edge labeled `edge_label`
/// from a node satisfying `x_label` to one satisfying `y_label`.
/// `y_label` may be a value binding (e.g. "fake" in Q4 of the paper).
struct Predicate {
  LabelId x_label;
  LabelId edge_label;
  LabelId y_label;

  /// P_q: the two-node pattern {x --q--> y} with x designated 0, y 1.
  Pattern ToPattern() const;

  friend bool operator==(const Predicate&, const Predicate&) = default;
};

/// A graph-pattern association rule R(x, y): Q(x, y) => q(x, y)
/// (Section 2.2).
///
/// The antecedent Q is a graph pattern with designated nodes x and y; the
/// consequent is a single edge predicate q(x, y) carrying the same search
/// conditions on x and y. The rule is represented by the pattern
/// P_R = Q + q(x, y). Validity (checked by `Create`):
///   (1) P_R is connected;
///   (2) Q is nonempty (at least one edge);
///   (3) q(x, y) does not appear in Q.
class Gpar {
 public:
  Gpar() = default;

  /// Builds and validates a GPAR from antecedent Q (x and y designated)
  /// and the consequent edge label.
  static Result<Gpar> Create(Pattern antecedent, LabelId q_label);

  /// Q(x, y) — the antecedent pattern.
  const Pattern& antecedent() const { return antecedent_; }
  /// P_R(x, y) — antecedent plus the consequent edge.
  const Pattern& pr() const { return pr_; }
  LabelId q_label() const { return q_label_; }

  /// The consequent predicate labels, derived from the designated nodes.
  Predicate predicate() const {
    return {antecedent_.node(antecedent_.x()).label, q_label_,
            antecedent_.node(antecedent_.y()).label};
  }

  /// r(P_R, x): the pattern radius at x; the mining bound d applies to it.
  uint32_t radius_at_x() const;

  /// The connected component of the antecedent Q that contains x (node ids
  /// renumbered; x and, if reachable, y re-designated). Fragment-local
  /// matching of the antecedent uses this component: it is exactly
  /// localizable within `eval_radius()` hops of the candidate, whereas
  /// components not containing x can match anywhere in G and are checked
  /// globally once (`other_components`).
  const Pattern& x_component() const { return x_component_; }

  /// Components of Q not containing x (e.g. an isolated y when the only
  /// y-edge is the consequent). Often empty.
  const std::vector<Pattern>& other_components() const {
    return other_components_;
  }

  /// The d-neighborhood depth needed to decide membership of a candidate
  /// in both P_R(x, ·) and Q(x, ·) locally:
  /// max(r(P_R, x), r(x_component of Q, x)). Note the second term can
  /// exceed the first: the consequent edge is a shortcut to y that the
  /// antecedent alone does not have.
  uint32_t eval_radius() const { return eval_radius_; }

  std::string ToString(const Interner& labels) const;

  friend bool operator==(const Gpar& a, const Gpar& b) {
    return a.q_label_ == b.q_label_ && a.antecedent_ == b.antecedent_;
  }

  /// Round-trippable text form: the antecedent in the pattern codec format
  /// followed by a `q <edge_label>` consequent line.
  std::string Serialize(const Interner& labels) const;
  static Result<Gpar> Parse(const std::string& text, Interner* labels);

  /// (De)serializes a rule set, one rule per `---`-separated block.
  static std::string SerializeSet(const std::vector<Gpar>& rules,
                                  const Interner& labels);
  static Result<std::vector<Gpar>> ParseSet(const std::string& text,
                                            Interner* labels);

 private:
  Pattern antecedent_;
  Pattern pr_;
  Pattern x_component_;
  std::vector<Pattern> other_components_;
  uint32_t eval_radius_ = 0;
  LabelId q_label_ = kNoLabel;
};

}  // namespace gpar

#endif  // GPAR_RULE_GPAR_H_
