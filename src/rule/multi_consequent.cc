#include "rule/multi_consequent.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "pattern/pattern_ops.h"
#include "rule/metrics.h"

namespace gpar {

Result<MultiConsequentGpar> MultiConsequentGpar::Create(
    Pattern antecedent, std::vector<ConsequentEdge> consequents) {
  if (consequents.empty()) {
    return Status::InvalidArgument("at least one consequent is required");
  }
  if (antecedent.num_edges() == 0) {
    return Status::InvalidArgument("antecedent Q must be nonempty");
  }
  std::set<std::pair<LabelId, PNodeId>> seen;
  for (const ConsequentEdge& c : consequents) {
    if (c.target >= antecedent.num_nodes()) {
      return Status::InvalidArgument("consequent target out of range");
    }
    if (c.target == antecedent.x()) {
      return Status::InvalidArgument("consequent target must differ from x");
    }
    if (!seen.insert({c.edge_label, c.target}).second) {
      return Status::InvalidArgument("duplicate consequent");
    }
    for (const PatternEdge& e : antecedent.edges()) {
      if (e.src == antecedent.x() && e.dst == c.target &&
          e.label == c.edge_label) {
        return Status::InvalidArgument("a consequent already appears in Q");
      }
    }
  }

  MultiConsequentGpar r;
  r.consequents_ = consequents;
  r.pr_ = antecedent;
  for (const ConsequentEdge& c : consequents) {
    r.pr_.AddEdge(antecedent.x(), c.edge_label, c.target);
  }
  if (!IsConnected(r.pr_)) {
    return Status::InvalidArgument("P_R must be connected");
  }
  // q*: the star of consequent edges with fresh target nodes carrying the
  // antecedent targets' labels.
  PNodeId qx = r.q_star_.AddNode(antecedent.node(antecedent.x()).label);
  r.q_star_.set_x(qx);
  for (const ConsequentEdge& c : consequents) {
    PNodeId t = r.q_star_.AddNode(antecedent.node(c.target).label,
                                  antecedent.node(c.target).multiplicity);
    r.q_star_.AddEdge(qx, c.edge_label, t);
  }
  r.antecedent_ = std::move(antecedent);
  return r;
}

std::string MultiConsequentGpar::ToString(const Interner& labels) const {
  std::ostringstream os;
  os << "GPAR: Q(x,y*) =>";
  for (const ConsequentEdge& c : consequents_) {
    os << ' ' << labels.Name(c.edge_label) << "(x,n" << c.target << ")";
  }
  os << '\n' << antecedent_.ToString(labels);
  return os.str();
}

MultiConsequentEval EvaluateMultiConsequent(Matcher& m,
                                            const MultiConsequentGpar& r) {
  MultiConsequentEval eval;
  const Graph& g = m.graph();
  const Pattern& qs = r.q_star();

  // Composite-event pools.
  std::vector<NodeId> q_matches = m.Images(qs, qs.x());
  std::sort(q_matches.begin(), q_matches.end());
  eval.supp_q = q_matches.size();

  std::vector<NodeId> qbar;
  const LabelId x_label = qs.node(qs.x()).label;
  for (NodeId v : g.nodes_with_label(x_label)) {
    if (std::binary_search(q_matches.begin(), q_matches.end(), v)) continue;
    // Negative under LCWA for the conjunction: the node "talks about"
    // every consequent predicate (has >= 1 edge of each label) yet fails
    // the composite event. Nodes silent on any q_i stay unknown.
    bool all_labels = true;
    for (const ConsequentEdge& c : r.consequents()) {
      if (!g.HasOutLabel(v, c.edge_label)) {
        all_labels = false;
        break;
      }
    }
    if (all_labels) qbar.push_back(v);
  }
  eval.supp_qbar = qbar.size();

  for (NodeId v : q_matches) {
    if (m.ExistsAt(r.pr(), v)) eval.pr_matches.push_back(v);
  }
  std::sort(eval.pr_matches.begin(), eval.pr_matches.end());
  eval.supp_r = eval.pr_matches.size();

  for (NodeId v : qbar) {
    if (m.ExistsAt(r.antecedent(), v)) ++eval.supp_qqbar;
  }
  eval.conf = BayesFactorConf(eval.supp_r, eval.supp_qbar, eval.supp_qqbar,
                              eval.supp_q);
  return eval;
}

}  // namespace gpar
