#include "rule/match_delta.h"

#include <algorithm>

namespace gpar {

MatchSetDelta EncodeMatchSet(std::span<const uint32_t> child,
                             std::span<const uint32_t> parent) {
  MatchSetDelta out;
  // One merge pass classifies every parent position as kept or removed and
  // detects non-subset children (a child value absent from the parent).
  std::vector<uint32_t> kept, removed;
  size_t ci = 0;
  for (uint32_t pi = 0; pi < parent.size(); ++pi) {
    if (ci < child.size() && child[ci] == parent[pi]) {
      kept.push_back(pi);
      ++ci;
    } else {
      removed.push_back(pi);
    }
  }
  if (ci != child.size()) {
    // Not a subset: raw values are the only faithful form.
    out.mode = MatchDeltaMode::kFull;
    out.payload.assign(child.begin(), child.end());
    return out;
  }
  if (kept.size() <= removed.size()) {
    out.mode = MatchDeltaMode::kKept;
    out.payload = std::move(kept);
  } else {
    out.mode = MatchDeltaMode::kRemoved;
    out.payload = std::move(removed);
  }
  return out;
}

Result<std::vector<uint32_t>> DecodeMatchSet(const MatchSetDelta& delta,
                                             std::span<const uint32_t> parent) {
  std::vector<uint32_t> out;
  switch (delta.mode) {
    case MatchDeltaMode::kFull:
      out.assign(delta.payload.begin(), delta.payload.end());
      return out;
    case MatchDeltaMode::kKept: {
      out.reserve(delta.payload.size());
      uint32_t prev = 0;
      bool first = true;
      for (uint32_t pos : delta.payload) {
        if (pos >= parent.size() || (!first && pos <= prev)) {
          return Status::Corruption("match-set delta: bad kept position " +
                                    std::to_string(pos));
        }
        out.push_back(parent[pos]);
        prev = pos;
        first = false;
      }
      return out;
    }
    case MatchDeltaMode::kRemoved: {
      uint32_t prev = 0;
      bool first = true;
      for (uint32_t pos : delta.payload) {
        if (pos >= parent.size() || (!first && pos <= prev)) {
          return Status::Corruption("match-set delta: bad removed position " +
                                    std::to_string(pos));
        }
        prev = pos;
        first = false;
      }
      out.reserve(parent.size() - delta.payload.size());
      size_t ri = 0;
      for (uint32_t pi = 0; pi < parent.size(); ++pi) {
        if (ri < delta.payload.size() && delta.payload[ri] == pi) {
          ++ri;
        } else {
          out.push_back(parent[pi]);
        }
      }
      return out;
    }
  }
  return Status::Corruption("match-set delta: unknown mode " +
                            std::to_string(static_cast<int>(delta.mode)));
}

void PutMatchSetDelta(std::string* buf, const MatchSetDelta& delta) {
  buf->push_back(static_cast<char>(delta.mode));
  PutU32(buf, static_cast<uint32_t>(delta.payload.size()));
  for (uint32_t v : delta.payload) PutU32(buf, v);
}

bool ReadMatchSetDelta(ByteReader* r, MatchSetDelta* delta) {
  uint8_t mode = 0;
  uint32_t count = 0;
  if (!r->ReadU8(&mode) || !r->ReadU32(&count)) return false;
  if (mode > static_cast<uint8_t>(MatchDeltaMode::kFull)) return false;
  // The count is untrusted: bound the allocation by the bytes present.
  if (uint64_t{count} * 4 > r->remaining()) return false;
  delta->mode = static_cast<MatchDeltaMode>(mode);
  delta->payload.clear();
  delta->payload.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t v;
    if (!r->ReadU32(&v)) return false;
    delta->payload.push_back(v);
  }
  return true;
}

size_t DeltaEncodedBytes(size_t child_size, size_t parent_size) {
  const size_t kept = child_size;
  const size_t removed = parent_size >= child_size ? parent_size - child_size
                                                   : child_size;
  return 1 + 4 + 4 * std::min(kept, removed);
}

size_t FullEncodedBytes(size_t child_size) { return 4 + 4 * child_size; }

}  // namespace gpar
