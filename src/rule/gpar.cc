#include "rule/gpar.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "pattern/codec.h"
#include "pattern/pattern_ops.h"

namespace gpar {

Pattern Predicate::ToPattern() const {
  Pattern p;
  PNodeId x = p.AddNode(x_label);
  PNodeId y = p.AddNode(y_label);
  p.AddEdge(x, edge_label, y);
  p.set_x(x);
  p.set_y(y);
  return p;
}

Result<Gpar> Gpar::Create(Pattern antecedent, LabelId q_label) {
  if (!antecedent.has_y()) {
    return Status::InvalidArgument("antecedent must designate y");
  }
  if (antecedent.x() == antecedent.y()) {
    return Status::InvalidArgument("x and y must be distinct");
  }
  if (antecedent.num_edges() == 0) {
    return Status::InvalidArgument("antecedent Q must be nonempty");
  }
  if (antecedent.node(antecedent.x()).multiplicity != 1 ||
      antecedent.node(antecedent.y()).multiplicity != 1) {
    return Status::InvalidArgument("designated nodes must have multiplicity 1");
  }
  for (const PatternEdge& e : antecedent.edges()) {
    if (e.src == antecedent.x() && e.dst == antecedent.y() &&
        e.label == q_label) {
      return Status::InvalidArgument("q(x, y) must not appear in Q");
    }
  }
  Gpar r;
  r.q_label_ = q_label;
  r.pr_ = antecedent;
  r.pr_.AddEdge(antecedent.x(), q_label, antecedent.y());
  r.antecedent_ = std::move(antecedent);
  if (!IsConnected(r.pr_)) {
    return Status::InvalidArgument("P_R must be connected");
  }

  // Decompose Q into the x-component and the rest.
  const Pattern& q = r.antecedent_;
  std::vector<uint32_t> dist = DistancesFrom(q, q.x());
  std::vector<PNodeId> remap(q.num_nodes(), kNoPatternNode);
  for (PNodeId u = 0; u < q.num_nodes(); ++u) {
    if (dist[u] != kUnreachable) {
      remap[u] = r.x_component_.AddNode(q.node(u).label,
                                        q.node(u).multiplicity);
    }
  }
  r.x_component_.set_x(remap[q.x()]);
  if (dist[q.y()] != kUnreachable) r.x_component_.set_y(remap[q.y()]);
  for (const PatternEdge& e : q.edges()) {
    if (remap[e.src] != kNoPatternNode) {
      r.x_component_.AddEdge(remap[e.src], e.label, remap[e.dst]);
    }
  }
  // Remaining components, peeled off one root at a time.
  std::vector<bool> taken(q.num_nodes(), false);
  for (PNodeId u = 0; u < q.num_nodes(); ++u) {
    taken[u] = dist[u] != kUnreachable;
  }
  for (PNodeId root = 0; root < q.num_nodes(); ++root) {
    if (taken[root]) continue;
    std::vector<uint32_t> cd = DistancesFrom(q, root);
    Pattern comp;
    std::vector<PNodeId> cmap(q.num_nodes(), kNoPatternNode);
    for (PNodeId u = 0; u < q.num_nodes(); ++u) {
      if (cd[u] != kUnreachable) {
        cmap[u] = comp.AddNode(q.node(u).label, q.node(u).multiplicity);
        taken[u] = true;
      }
    }
    comp.set_x(0);
    for (const PatternEdge& e : q.edges()) {
      if (cmap[e.src] != kNoPatternNode) {
        comp.AddEdge(cmap[e.src], e.label, cmap[e.dst]);
      }
    }
    r.other_components_.push_back(std::move(comp));
  }

  uint32_t q_radius = Radius(r.x_component_, r.x_component_.x());
  r.eval_radius_ = std::max(Radius(r.pr_, r.pr_.x()), q_radius);
  return r;
}

uint32_t Gpar::radius_at_x() const { return Radius(pr_, pr_.x()); }

std::string Gpar::ToString(const Interner& labels) const {
  std::ostringstream os;
  os << "GPAR: Q(x,y) => " << labels.Name(q_label_) << "(x,y)\n"
     << antecedent_.ToString(labels);
  return os.str();
}

std::string Gpar::Serialize(const Interner& labels) const {
  std::ostringstream os;
  os << antecedent_.ToString(labels);
  os << "q " << labels.Name(q_label_) << '\n';
  return os.str();
}

Result<Gpar> Gpar::Parse(const std::string& text, Interner* labels) {
  // Split off the `q <label>` line; the rest is the antecedent pattern.
  std::istringstream is(text);
  std::string line;
  std::ostringstream pattern_text;
  LabelId q_label = kNoLabel;
  while (std::getline(is, line)) {
    if (line.rfind("q ", 0) == 0) {
      std::string name = line.substr(2);
      while (!name.empty() && (name.back() == ' ' || name.back() == '\r')) {
        name.pop_back();
      }
      q_label = labels->Intern(name);
    } else {
      pattern_text << line << '\n';
    }
  }
  if (q_label == kNoLabel) {
    return Status::Corruption("GPAR text missing 'q <label>' line");
  }
  GPAR_ASSIGN_OR_RETURN(Pattern antecedent,
                        ParsePattern(pattern_text.str(), labels));
  return Create(std::move(antecedent), q_label);
}

std::string Gpar::SerializeSet(const std::vector<Gpar>& rules,
                               const Interner& labels) {
  std::ostringstream os;
  for (const Gpar& r : rules) {
    os << r.Serialize(labels) << "---\n";
  }
  return os.str();
}

Result<std::vector<Gpar>> Gpar::ParseSet(const std::string& text,
                                         Interner* labels) {
  std::vector<Gpar> out;
  std::istringstream is(text);
  std::string line;
  std::ostringstream block;
  auto flush = [&]() -> Status {
    std::string b = block.str();
    block.str("");
    bool blank = b.find_first_not_of(" \t\r\n") == std::string::npos;
    if (blank) return Status::OK();
    GPAR_ASSIGN_OR_RETURN(Gpar r, Parse(b, labels));
    out.push_back(std::move(r));
    return Status::OK();
  };
  while (std::getline(is, line)) {
    if (line.rfind("---", 0) == 0) {
      GPAR_RETURN_NOT_OK(flush());
    } else {
      block << line << '\n';
    }
  }
  GPAR_RETURN_NOT_OK(flush());
  return out;
}

}  // namespace gpar
