#ifndef GPAR_RULE_MATCH_DELTA_H_
#define GPAR_RULE_MATCH_DELTA_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"

namespace gpar {

/// Delta encoding for match-evidence center sets (the ROADMAP
/// "match-set-delta messages" item). Anti-monotonicity makes every child
/// rule's match set a subset of its parent's (levelwise mining, §4.2), so a
/// child set is cheaper to store as *positions into the parent list* than
/// as raw center ids: kept-positions when the child retained few centers,
/// removed-positions when it dropped few. High-support rules — the ones
/// with the largest sets — lose almost nothing per round, which is exactly
/// where removed-position frames collapse to a handful of words. The codec
/// is shared by the evidence section of rule-snapshot v2 (on disk) and by
/// the BSP message-volume accounting in DmineStats (on the wire).
enum class MatchDeltaMode : uint8_t {
  kKept = 0,     ///< payload = positions of the child's members in parent
  kRemoved = 1,  ///< payload = positions of parent members NOT in the child
  kFull = 2,     ///< payload = the raw child values (no usable parent)
};

/// One encoded set. `payload` holds parent positions (kKept / kRemoved,
/// strictly ascending) or raw values (kFull, strictly ascending).
struct MatchSetDelta {
  MatchDeltaMode mode = MatchDeltaMode::kFull;
  std::vector<uint32_t> payload;

  friend bool operator==(const MatchSetDelta&, const MatchSetDelta&) = default;
};

/// Encodes sorted-unique `child` against sorted-unique `parent`, picking the
/// smaller of kept/removed position lists. A child that is NOT a subset of
/// the parent (never the case for lineage evidence, but the codec must not
/// corrupt on it) falls back to kFull.
MatchSetDelta EncodeMatchSet(std::span<const uint32_t> child,
                             std::span<const uint32_t> parent);

/// Inverse of `EncodeMatchSet`: reconstructs the child values against the
/// same parent list. Corruption on out-of-range or non-ascending positions.
Result<std::vector<uint32_t>> DecodeMatchSet(const MatchSetDelta& delta,
                                             std::span<const uint32_t> parent);

/// Serialized form: u8 mode, u32 count, count x u32 payload.
void PutMatchSetDelta(std::string* buf, const MatchSetDelta& delta);
bool ReadMatchSetDelta(ByteReader* r, MatchSetDelta* delta);

/// Wire size of the encoding `EncodeMatchSet` would pick for a child of
/// `child_size` members inside a parent of `parent_size`, without
/// materializing either list — the accounting hook for DmineStats.
size_t DeltaEncodedBytes(size_t child_size, size_t parent_size);

/// Wire size of the pre-delta full encoding (raw u32 center list).
size_t FullEncodedBytes(size_t child_size);

}  // namespace gpar

#endif  // GPAR_RULE_MATCH_DELTA_H_
