#include "rule/rule_snapshot.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/binary_io.h"

namespace gpar {

namespace {

// "GPARRULE", little-endian.
constexpr uint64_t kRuleMagic = 0x454c555241525047ull;
constexpr uint32_t kRuleVersion = 1;
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 8;

}  // namespace

Status WriteRuleSetSnapshot(const std::vector<RuleRecord>& rules,
                            const Interner& labels, std::ostream& os) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(rules.size()));
  for (const RuleRecord& r : rules) {
    PutU64(&payload, r.supp);
    PutF64(&payload, r.conf);
    PutString(&payload, r.rule.Serialize(labels));
  }
  std::string header;
  PutU64(&header, kRuleMagic);
  PutU32(&header, kRuleVersion);
  PutU64(&header, payload.size());
  PutU64(&header, Fnv1a64(payload));
  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!os) return Status::IoError("rule snapshot write failed");
  return Status::OK();
}

Status WriteRuleSetSnapshotFile(const std::vector<RuleRecord>& rules,
                                const Interner& labels,
                                const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open " + path);
  return WriteRuleSetSnapshot(rules, labels, os);
}

Result<std::vector<RuleRecord>> ReadRuleSetSnapshot(std::istream& is,
                                                    Interner* labels) {
  std::string header(kHeaderBytes, '\0');
  is.read(header.data(), static_cast<std::streamsize>(kHeaderBytes));
  if (is.gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
    return Status::Corruption("rule snapshot: truncated header");
  }
  ByteReader hr(header);
  uint64_t magic = 0, payload_size = 0, checksum = 0;
  uint32_t version = 0;
  if (!hr.ReadU64(&magic) || !hr.ReadU32(&version) ||
      !hr.ReadU64(&payload_size) || !hr.ReadU64(&checksum)) {
    return Status::Corruption("rule snapshot: truncated header");
  }
  if (magic != kRuleMagic) {
    return Status::Corruption("rule snapshot: bad magic");
  }
  if (version != kRuleVersion) {
    return Status::Corruption("rule snapshot: unsupported version " +
                              std::to_string(version));
  }
  // Untrusted sizes: bounded-chunk payload read, and no container sized
  // from the record count alone (each record is at least 20 bytes).
  std::string payload;
  GPAR_RETURN_NOT_OK(
      ReadSizedPayload(is, payload_size, "rule snapshot", &payload));
  if (Fnv1a64(payload) != checksum) {
    return Status::Corruption("rule snapshot: checksum mismatch");
  }

  ByteReader r(payload);
  uint32_t count;
  if (!r.ReadU32(&count)) {
    return Status::Corruption("rule snapshot: bad rule count");
  }
  if (uint64_t{count} * 20 > r.remaining()) {
    return Status::Corruption("rule snapshot: bad rule count");
  }
  std::vector<RuleRecord> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RuleRecord rec;
    std::string text;
    if (!r.ReadU64(&rec.supp) || !r.ReadF64(&rec.conf) ||
        !r.ReadString(&text)) {
      return Status::Corruption("rule snapshot: truncated rule record");
    }
    GPAR_ASSIGN_OR_RETURN(rec.rule, Gpar::Parse(text, labels));
    out.push_back(std::move(rec));
  }
  if (!r.exhausted()) {
    return Status::Corruption("rule snapshot: trailing bytes in payload");
  }
  return out;
}

Result<std::vector<RuleRecord>> ReadRuleSetSnapshotFile(
    const std::string& path, Interner* labels) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open " + path);
  return ReadRuleSetSnapshot(is, labels);
}

}  // namespace gpar
