#include "rule/rule_snapshot.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <span>

#include "common/binary_io.h"
#include "rule/match_delta.h"

namespace gpar {

namespace {

// "GPARRULE", little-endian.
constexpr uint64_t kRuleMagic = 0x454c555241525047ull;
constexpr uint32_t kRuleVersion = 1;
constexpr uint32_t kRuleVersionV2 = 2;
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 8;

void PutRecords(const std::vector<RuleRecord>& rules, const Interner& labels,
                std::string* payload) {
  PutU32(payload, static_cast<uint32_t>(rules.size()));
  for (const RuleRecord& r : rules) {
    PutU64(payload, r.supp);
    PutF64(payload, r.conf);
    PutString(payload, r.rule.Serialize(labels));
  }
}

void PutNodeList(std::string* payload, std::span<const NodeId> nodes) {
  PutU32(payload, static_cast<uint32_t>(nodes.size()));
  for (NodeId v : nodes) PutU32(payload, v);
}

void PutEvidence(const RuleSetEvidence& e, const Interner& labels,
                 std::string* payload) {
  PutString(payload, e.setup.x_label);
  PutString(payload, e.setup.edge_label);
  PutString(payload, e.setup.y_label);
  PutU32(payload, e.setup.k);
  PutU32(payload, e.setup.d);
  PutU64(payload, e.setup.sigma);
  PutF64(payload, e.setup.lambda);
  PutU32(payload, e.setup.max_pattern_edges);
  PutU64(payload, e.setup.seed_edge_limit);
  PutU64(payload, e.setup.max_candidates_per_round);
  PutU32(payload, e.setup.bool_flags);
  PutNodeList(payload, e.q_pool);
  PutNodeList(payload, e.qbar_pool);
  PutU32(payload, static_cast<uint32_t>(e.entries.size()));
  for (size_t i = 0; i < e.entries.size(); ++i) {
    const EvidenceEntry& ent = e.entries[i];
    PutString(payload, ent.rule.Serialize(labels));
    PutU32(payload, ent.parent);
    payload->push_back(ent.ant_probed ? 1 : 0);
    const EvidenceEntry* parent =
        ent.parent == kEvidenceRoot ? nullptr : &e.entries[ent.parent];
    PutMatchSetDelta(
        payload, EncodeMatchSet(ent.pr_matches,
                                parent ? parent->pr_matches : e.q_pool));
    PutMatchSetDelta(
        payload, EncodeMatchSet(ent.ant_matches,
                                parent ? parent->ant_matches : e.qbar_pool));
  }
}

Status WriteFramed(uint32_t version, const std::string& payload,
                   std::ostream& os) {
  std::string header;
  PutU64(&header, kRuleMagic);
  PutU32(&header, version);
  PutU64(&header, payload.size());
  PutU64(&header, Fnv1a64(payload));
  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!os) return Status::IoError("rule snapshot write failed");
  return Status::OK();
}

Status ReadRecords(ByteReader* r, Interner* labels,
                   std::vector<RuleRecord>* out) {
  uint32_t count;
  if (!r->ReadU32(&count)) {
    return Status::Corruption("rule snapshot: bad rule count");
  }
  // Untrusted count: each record is at least 20 bytes.
  if (uint64_t{count} * 20 > r->remaining()) {
    return Status::Corruption("rule snapshot: bad rule count");
  }
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RuleRecord rec;
    std::string text;
    if (!r->ReadU64(&rec.supp) || !r->ReadF64(&rec.conf) ||
        !r->ReadString(&text)) {
      return Status::Corruption("rule snapshot: truncated rule record");
    }
    GPAR_ASSIGN_OR_RETURN(rec.rule, Gpar::Parse(text, labels));
    out->push_back(std::move(rec));
  }
  return Status::OK();
}

Status ReadNodeList(ByteReader* r, const char* what,
                    std::vector<NodeId>* out) {
  uint32_t count;
  if (!r->ReadU32(&count) || uint64_t{count} * 4 > r->remaining()) {
    return Status::Corruption(std::string("rule snapshot: bad ") + what +
                              " length");
  }
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t v;
    if (!r->ReadU32(&v)) {
      return Status::Corruption(std::string("rule snapshot: truncated ") +
                                what);
    }
    out->push_back(v);
  }
  return Status::OK();
}

Status ReadEvidence(ByteReader* r, Interner* labels, RuleSetEvidence* out) {
  MiningSetup& s = out->setup;
  if (!r->ReadString(&s.x_label) || !r->ReadString(&s.edge_label) ||
      !r->ReadString(&s.y_label) || !r->ReadU32(&s.k) || !r->ReadU32(&s.d) ||
      !r->ReadU64(&s.sigma) || !r->ReadF64(&s.lambda) ||
      !r->ReadU32(&s.max_pattern_edges) || !r->ReadU64(&s.seed_edge_limit) ||
      !r->ReadU64(&s.max_candidates_per_round) ||
      !r->ReadU32(&s.bool_flags)) {
    return Status::Corruption("rule snapshot: truncated mining setup");
  }
  GPAR_RETURN_NOT_OK(ReadNodeList(r, "q pool", &out->q_pool));
  GPAR_RETURN_NOT_OK(ReadNodeList(r, "qbar pool", &out->qbar_pool));
  uint32_t count;
  if (!r->ReadU32(&count) || uint64_t{count} * 14 > r->remaining()) {
    return Status::Corruption("rule snapshot: bad evidence entry count");
  }
  out->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    EvidenceEntry ent;
    std::string text;
    uint8_t ant_probed;
    MatchSetDelta pr_delta, ant_delta;
    if (!r->ReadString(&text) || !r->ReadU32(&ent.parent) ||
        !r->ReadU8(&ant_probed) || !ReadMatchSetDelta(r, &pr_delta) ||
        !ReadMatchSetDelta(r, &ant_delta)) {
      return Status::Corruption("rule snapshot: truncated evidence entry");
    }
    if (ent.parent != kEvidenceRoot && ent.parent >= i) {
      return Status::Corruption(
          "rule snapshot: evidence entry " + std::to_string(i) +
          " references parent " + std::to_string(ent.parent) +
          " at or after itself");
    }
    GPAR_ASSIGN_OR_RETURN(ent.rule, Gpar::Parse(text, labels));
    ent.ant_probed = ant_probed != 0;
    const EvidenceEntry* parent =
        ent.parent == kEvidenceRoot ? nullptr : &out->entries[ent.parent];
    GPAR_ASSIGN_OR_RETURN(
        ent.pr_matches,
        DecodeMatchSet(pr_delta, parent ? parent->pr_matches : out->q_pool));
    GPAR_ASSIGN_OR_RETURN(
        ent.ant_matches,
        DecodeMatchSet(ant_delta,
                       parent ? parent->ant_matches : out->qbar_pool));
    out->entries.push_back(std::move(ent));
  }
  return Status::OK();
}

}  // namespace

Status WriteRuleSetSnapshot(const std::vector<RuleRecord>& rules,
                            const Interner& labels, std::ostream& os) {
  std::string payload;
  PutRecords(rules, labels, &payload);
  return WriteFramed(kRuleVersion, payload, os);
}

Status WriteRuleSetSnapshotFile(const std::vector<RuleRecord>& rules,
                                const Interner& labels,
                                const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open " + path);
  return WriteRuleSetSnapshot(rules, labels, os);
}

Status WriteRuleSetSnapshotV2(const std::vector<RuleRecord>& rules,
                              const RuleSetEvidence& evidence,
                              const Interner& labels, std::ostream& os) {
  std::string payload;
  PutRecords(rules, labels, &payload);
  PutEvidence(evidence, labels, &payload);
  return WriteFramed(kRuleVersionV2, payload, os);
}

Status WriteRuleSetSnapshotV2File(const std::vector<RuleRecord>& rules,
                                  const RuleSetEvidence& evidence,
                                  const Interner& labels,
                                  const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open " + path);
  return WriteRuleSetSnapshotV2(rules, evidence, labels, os);
}

Result<RuleSetSnapshot> ReadRuleSetSnapshotAny(std::istream& is,
                                               Interner* labels) {
  std::string header(kHeaderBytes, '\0');
  is.read(header.data(), static_cast<std::streamsize>(kHeaderBytes));
  if (is.gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
    return Status::Corruption("rule snapshot: truncated header");
  }
  ByteReader hr(header);
  uint64_t magic = 0, payload_size = 0, checksum = 0;
  uint32_t version = 0;
  if (!hr.ReadU64(&magic) || !hr.ReadU32(&version) ||
      !hr.ReadU64(&payload_size) || !hr.ReadU64(&checksum)) {
    return Status::Corruption("rule snapshot: truncated header");
  }
  if (magic != kRuleMagic) {
    return Status::Corruption("rule snapshot: bad magic");
  }
  if (version != kRuleVersion && version != kRuleVersionV2) {
    return Status::Corruption("rule snapshot: unsupported version " +
                              std::to_string(version));
  }
  // Untrusted sizes: bounded-chunk payload read, and no container sized
  // from a count alone (see the per-section bounds below).
  std::string payload;
  GPAR_RETURN_NOT_OK(
      ReadSizedPayload(is, payload_size, "rule snapshot", &payload));
  if (Fnv1a64(payload) != checksum) {
    return Status::Corruption("rule snapshot: checksum mismatch");
  }

  ByteReader r(payload);
  RuleSetSnapshot out;
  GPAR_RETURN_NOT_OK(ReadRecords(&r, labels, &out.rules));
  if (version == kRuleVersionV2) {
    out.has_evidence = true;
    GPAR_RETURN_NOT_OK(ReadEvidence(&r, labels, &out.evidence));
  }
  if (!r.exhausted()) {
    return Status::Corruption("rule snapshot: trailing bytes in payload");
  }
  return out;
}

Result<RuleSetSnapshot> ReadRuleSetSnapshotAnyFile(const std::string& path,
                                                   Interner* labels) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open " + path);
  return ReadRuleSetSnapshotAny(is, labels);
}

Result<std::vector<RuleRecord>> ReadRuleSetSnapshot(std::istream& is,
                                                    Interner* labels) {
  GPAR_ASSIGN_OR_RETURN(RuleSetSnapshot snap,
                        ReadRuleSetSnapshotAny(is, labels));
  return std::move(snap.rules);
}

Result<std::vector<RuleRecord>> ReadRuleSetSnapshotFile(
    const std::string& path, Interner* labels) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open " + path);
  return ReadRuleSetSnapshot(is, labels);
}

}  // namespace gpar
