#ifndef GPAR_RULE_MULTI_CONSEQUENT_H_
#define GPAR_RULE_MULTI_CONSEQUENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "match/matcher.h"
#include "pattern/pattern.h"

namespace gpar {

/// One consequent predicate of a conjunctive-consequent GPAR: an edge
/// labeled `edge_label` from x to the antecedent node `target`.
struct ConsequentEdge {
  LabelId edge_label;
  PNodeId target;
};

/// The paper's §2.2 remark: "a consequent can be readily extended to
/// multiple predicates and even to a graph pattern". This class implements
/// the conjunctive form
///
///   R(x, y_1..y_m): Q(x, y_1..y_m) => q_1(x, y_1) ∧ ... ∧ q_m(x, y_m)
///
/// interpreted as a single composite event: a match must satisfy *all*
/// consequent edges. (Each target y_i is a node of Q; the single-predicate
/// Gpar is the m = 1 special case.)
///
/// Metrics mirror Section 3, with the composite consequent playing q's
/// role: P_q* is the star {x --q_i--> y_i}; the LCWA negative pool contains
/// nodes with at least one edge of every q_i label that still fail P_q*.
class MultiConsequentGpar {
 public:
  MultiConsequentGpar() = default;

  /// Validates: >= 1 consequent, antecedent nonempty, no consequent
  /// duplicated in Q, P_R connected, distinct targets.
  static Result<MultiConsequentGpar> Create(
      Pattern antecedent, std::vector<ConsequentEdge> consequents);

  const Pattern& antecedent() const { return antecedent_; }
  /// P_R: antecedent plus every consequent edge.
  const Pattern& pr() const { return pr_; }
  /// P_q*: x plus the consequent star only (labels from the antecedent).
  const Pattern& q_star() const { return q_star_; }
  const std::vector<ConsequentEdge>& consequents() const {
    return consequents_;
  }

  std::string ToString(const Interner& labels) const;

 private:
  Pattern antecedent_;
  Pattern pr_;
  Pattern q_star_;
  std::vector<ConsequentEdge> consequents_;
};

/// Section-3 metrics for the composite event.
struct MultiConsequentEval {
  uint64_t supp_r = 0;       ///< ||P_R(x, G)||
  uint64_t supp_q = 0;       ///< ||P_q*(x, G)||
  uint64_t supp_qbar = 0;    ///< LCWA negatives for the composite event
  uint64_t supp_qqbar = 0;   ///< negatives matching the antecedent
  double conf = 0;           ///< BF/LCWA confidence
  std::vector<NodeId> pr_matches;  ///< sorted
};

MultiConsequentEval EvaluateMultiConsequent(Matcher& m,
                                            const MultiConsequentGpar& r);

}  // namespace gpar

#endif  // GPAR_RULE_MULTI_CONSEQUENT_H_
