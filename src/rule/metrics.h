#ifndef GPAR_RULE_METRICS_H_
#define GPAR_RULE_METRICS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "match/matcher.h"
#include "rule/gpar.h"

namespace gpar {

/// Per-(graph, predicate) statistics (Section 3). These never change for a
/// fixed q(x, y) and are computed once: the paper's DMine derives them "once
/// for all" in its first round.
///
///  * supp(q, G)    = ||P_q(x, G)||: distinct x-matches of the consequent.
///  * supp(~q, G)   = nodes labeled like x that have >= 1 out-edge labeled q
///                    but are NOT in P_q(x, G) (they q-link only to nodes
///                    failing y's condition) — the LCWA "negative" pool.
/// Nodes with x's label and no q-edge at all are LCWA "unknown" and counted
/// nowhere.
struct QStats {
  uint64_t supp_q = 0;
  uint64_t supp_qbar = 0;
  std::vector<NodeId> q_matches;   ///< P_q(x, G), sorted
  std::vector<NodeId> qbar_nodes;  ///< sorted
};

/// Computes QStats with `m` (bound to the graph) for predicate `q`.
QStats ComputeQStats(Matcher& m, const Predicate& q);

/// LCWA classification of a node with x's label (Section 3, Example 7).
enum class LcwaCase { kPositive, kNegative, kUnknown };
LcwaCase ClassifyLcwa(const Graph& g, const Predicate& q, NodeId v,
                      const QStats& stats);

/// Bayes-Factor confidence under LCWA:
///   conf(R, G) = supp(R, G) * supp(~q, G) / (supp(Q~q, G) * supp(q, G)).
/// Returns +infinity for the two trivial cases the paper distinguishes
/// (supp(Q~q) = 0: a logic rule; supp(q) = 0: q names no one).
double BayesFactorConf(uint64_t supp_r, uint64_t supp_qbar,
                       uint64_t supp_qqbar, uint64_t supp_q);

/// Full evaluation of one GPAR on the matcher's graph.
struct GparEval {
  uint64_t supp_r = 0;       ///< supp(R, G) = ||P_R(x, G)||
  uint64_t supp_q_ant = 0;   ///< supp(Q, G) = ||Q(x, G)|| (0 if not computed)
  uint64_t supp_qqbar = 0;   ///< ||Q(x, G) ∩ ~q nodes||
  std::vector<NodeId> pr_matches;          ///< P_R(x, G), sorted
  std::vector<NodeId> antecedent_matches;  ///< Q(x, G), sorted (optional)
  double conf = 0;               ///< BF/LCWA confidence
  double conventional_conf = 0;  ///< supp(R)/supp(Q) (needs antecedent set)
  double pca_conf = 0;           ///< supp(R)/supp(Q~q) per the paper's Exp-2
  bool trivial_logic_rule = false;  ///< supp(Q~q) = 0
  bool trivial_no_q = false;        ///< supp(q) = 0
};

/// Options for `EvaluateGpar`. Computing the full antecedent image set
/// Q(x, G) costs one exists-query per x-labeled node; callers that only
/// need conf can skip it (P_R matches are found among q-matches and Q~q
/// among ~q nodes, both much smaller pools).
struct EvalOptions {
  bool compute_antecedent_images = true;
};

GparEval EvaluateGpar(Matcher& m, const Gpar& r, const QStats& stats,
                      const EvalOptions& options = {});

/// Minimum-image-based support [7]: the smallest, over pattern nodes u, of
/// the number of distinct graph nodes matched to u across all embeddings.
/// Enumerates embeddings up to `embedding_cap` (0 = unlimited).
uint64_t MinImageSupport(Matcher& m, const Pattern& p,
                         uint64_t embedding_cap = 1000000);

/// Image-based confidence (the paper's Exp-2 "Iconf"): conf(R, G) with the
/// pattern supports supp(R) and supp(q) replaced by minimum-image supports.
/// The ~q terms count plain nodes (not pattern matches) and are kept as-is.
double ImageBasedConf(Matcher& m, const Gpar& r, const QStats& stats,
                      uint64_t supp_qqbar, uint64_t embedding_cap = 1000000);

}  // namespace gpar

#endif  // GPAR_RULE_METRICS_H_
