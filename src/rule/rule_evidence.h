#ifndef GPAR_RULE_RULE_EVIDENCE_H_
#define GPAR_RULE_RULE_EVIDENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "rule/gpar.h"

namespace gpar {

/// `EvidenceEntry::parent` value marking a root entry — one whose match
/// sets are deltas against the round-0 pools rather than another entry.
inline constexpr uint32_t kEvidenceRoot = 0xffffffffu;

/// The mining configuration a persisted evidence section was produced
/// under. Evidence is only reusable when the maintainer replays discovery
/// with the SAME parameters (the candidate stream, dedup decisions, and
/// pools all depend on them), so the section records the full setup and
/// `RuleMaintainer::FromEvidence` rejects mismatches instead of silently
/// patching against a foreign lineage. Labels ride as names (like the rule
/// records themselves) so the section stays loadable against any graph.
struct MiningSetup {
  std::string x_label;
  std::string edge_label;
  std::string y_label;
  uint32_t k = 10;
  uint32_t d = 2;
  uint64_t sigma = 1;
  double lambda = 0.5;
  uint32_t max_pattern_edges = 6;
  uint64_t seed_edge_limit = 20;
  uint64_t max_candidates_per_round = 300;
  /// The `DmineOptions` ablation booleans, bit-packed (see
  /// `MaintainOptions` for the mapping). Part of the setup because flags
  /// like `enable_bisim_prefilter` change which candidates survive dedup.
  uint32_t bool_flags = 0;

  friend bool operator==(const MiningSetup&, const MiningSetup&) = default;
};

/// Match evidence for one evaluated candidate rule: the exact center sets
/// the last discovery pass computed. `pr_matches` are the candidates
/// matching P_R(x, ·) (global node ids, sorted); `ant_matches` are the
/// LCWA negatives matching the antecedent's x-component (the supp(Q & qbar)
/// side). Anti-monotonicity makes both sets deltas against the parent
/// entry's sets (roots delta against the round-0 pools), which is how they
/// serialize (see match_delta.h).
struct EvidenceEntry {
  Gpar rule;
  /// Index of the parent entry (earlier in `entries`), or `kEvidenceRoot`.
  uint32_t parent = kEvidenceRoot;
  /// False when the pass skipped the antecedent side entirely (a
  /// non-localizable other-component of Q failed its one global check);
  /// `ant_matches` is then empty and NOT evidence of emptiness.
  bool ant_probed = false;
  std::vector<NodeId> pr_matches;
  std::vector<NodeId> ant_matches;

  friend bool operator==(const EvidenceEntry&, const EvidenceEntry&) = default;
};

/// The full per-rule match evidence of one discovery pass — what snapshot
/// v2 persists alongside the rule records and what `RuleMaintainer` patches
/// under deltas instead of re-mining. Entries are in evaluation order, so
/// every parent precedes its children (the serialized deltas decode in one
/// forward sweep).
struct RuleSetEvidence {
  MiningSetup setup;
  /// Round-0 pools on the evidence graph: candidate centers matching the
  /// consequent q(x, ·), and LCWA negatives (no q-labeled out-edge).
  /// Sorted by node id.
  std::vector<NodeId> q_pool;
  std::vector<NodeId> qbar_pool;
  std::vector<EvidenceEntry> entries;

  friend bool operator==(const RuleSetEvidence&,
                         const RuleSetEvidence&) = default;
};

}  // namespace gpar

#endif  // GPAR_RULE_RULE_EVIDENCE_H_
