// Quickstart: build a small labeled social graph, define a GPAR, and
// compute its support and LCWA/Bayes-Factor confidence.
//
//   ./build/examples/quickstart
//
// The rule: "if x and x' are friends and x' shops at store y, then x will
// likely shop at y too."

#include <cstdio>

#include "graph/graph_builder.h"
#include "match/matcher.h"
#include "rule/gpar.h"
#include "rule/metrics.h"

int main() {
  using namespace gpar;

  // --- 1. Build a graph. Store labels act as value bindings ("Tesco"),
  // like the paper's Q3 (Fig. 1c). --------------------------------------
  GraphBuilder b;
  NodeId alice = b.AddNode("person");
  NodeId bob = b.AddNode("person");
  NodeId carol = b.AddNode("person");
  NodeId dave = b.AddNode("person");
  NodeId tesco = b.AddNode("tesco_store");
  NodeId spar = b.AddNode("spar_store");

  auto friends = [&](NodeId u, NodeId v) {
    (void)b.AddEdge(u, "friend", v);
    (void)b.AddEdge(v, "friend", u);
  };
  friends(alice, bob);
  friends(bob, carol);
  friends(carol, dave);
  (void)b.AddEdge(alice, "shops_at", tesco);
  (void)b.AddEdge(bob, "shops_at", tesco);
  (void)b.AddEdge(carol, "shops_at", spar);  // an LCWA negative for q
  // dave shops nowhere: "unknown" under the local closed world assumption.
  Graph g = std::move(b).Build();
  std::printf("graph: %u nodes, %zu edges\n", g.num_nodes(), g.num_edges());

  // --- 2. Define the GPAR R(x, y): Q(x, y) => shops_at(x, y:tesco). -------
  const Interner& labels = g.labels();
  Pattern antecedent;
  PNodeId x = antecedent.AddNode(labels.Lookup("person"));
  PNodeId xp = antecedent.AddNode(labels.Lookup("person"));
  PNodeId y = antecedent.AddNode(labels.Lookup("tesco_store"));
  antecedent.set_x(x);
  antecedent.set_y(y);
  antecedent.AddEdge(x, labels.Lookup("friend"), xp);
  antecedent.AddEdge(xp, labels.Lookup("shops_at"), y);

  auto rule = Gpar::Create(std::move(antecedent), labels.Lookup("shops_at"));
  if (!rule.ok()) {
    std::fprintf(stderr, "invalid GPAR: %s\n",
                 rule.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", rule->ToString(labels).c_str());

  // --- 3. Evaluate support and confidence. --------------------------------
  VF2Matcher matcher(g);
  QStats stats = ComputeQStats(matcher, rule->predicate());
  GparEval eval = EvaluateGpar(matcher, *rule, stats);

  std::printf("supp(q)   = %llu   (people shopping anywhere)\n",
              static_cast<unsigned long long>(stats.supp_q));
  std::printf("supp(~q)  = %llu   (LCWA negatives)\n",
              static_cast<unsigned long long>(stats.supp_qbar));
  std::printf("supp(Q)   = %llu   (antecedent matches)\n",
              static_cast<unsigned long long>(eval.supp_q_ant));
  std::printf("supp(R)   = %llu   (rule matches)\n",
              static_cast<unsigned long long>(eval.supp_r));
  std::printf("conf(R)   = %.3f  (Bayes-Factor under LCWA)\n", eval.conf);
  std::printf("conv conf = %.3f  (classic supp(R)/supp(Q), for contrast)\n",
              eval.conventional_conf);

  std::printf("\npotential customers (antecedent matches):");
  for (NodeId v : eval.antecedent_matches) std::printf(" node%u", v);
  std::printf("\n");
  return 0;
}
