// The paper's fraud-detection example (Example 1(4), Fig. 1(d) / Fig. 2
// G2): rule R4 flags accounts that behave like confirmed fakes — same
// liked blogs, posts sharing tell-tale keywords ("claim a prize").
//
//   ./build/examples/fake_account_detection
//
// Shows the LCWA three-way classification and then scales the scenario up:
// a synthetic account graph with a planted fake ring, identified by EIP.

#include <cstdio>

#include "common/rng.h"
#include "graph/graph_builder.h"
#include "graph/paper_graphs.h"
#include "identify/eip.h"
#include "match/matcher.h"
#include "rule/metrics.h"

namespace {

using namespace gpar;

/// A larger synthetic version of G2: `rings` fake rings, each posting
/// blogs that share a scam keyword, plus honest accounts with ordinary
/// behaviour. One member per ring is already confirmed (is_a -> fake).
Graph MakeAccountGraph(uint32_t rings, uint32_t ring_size,
                       uint32_t honest_accounts, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b;
  LabelId acct = b.InternLabel("acct");
  LabelId blog = b.InternLabel("blog");
  LabelId keyword = b.InternLabel("keyword");
  LabelId fake = b.InternLabel("fake");
  LabelId like = b.InternLabel("like");
  LabelId post = b.InternLabel("post");
  LabelId contains = b.InternLabel("contains");
  LabelId is_a = b.InternLabel("is_a");

  LabelId genuine = b.InternLabel("genuine");
  NodeId fake_node = b.AddNode(fake);
  NodeId genuine_node = b.AddNode(genuine);
  // A pool of popular blogs everyone likes a couple of.
  std::vector<NodeId> popular;
  for (int i = 0; i < 12; ++i) popular.push_back(b.AddNode(blog));

  for (uint32_t r = 0; r < rings; ++r) {
    NodeId scam_kw = b.AddNode(keyword);
    NodeId liked_a = popular[rng.Uniform(popular.size())];
    NodeId liked_b = popular[rng.Uniform(popular.size())];
    for (uint32_t m = 0; m < ring_size; ++m) {
      NodeId a = b.AddNode(acct);
      b.AddEdgeUnchecked(a, like, liked_a);
      b.AddEdgeUnchecked(a, like, liked_b);
      NodeId p = b.AddNode(blog);
      b.AddEdgeUnchecked(a, post, p);
      b.AddEdgeUnchecked(p, contains, scam_kw);
      // Two confirmed fakes per ring, so the rule has positive support
      // (each confirmed fake has a confirmed partner matching x').
      if (m < 2) b.AddEdgeUnchecked(a, is_a, fake_node);
    }
    // One "recovered" account per other ring: it behaved like the ring
    // (same likes, scam keyword) but was verified genuine. These are the
    // LCWA counterexamples that keep conf(R4) finite and honest.
    if (r % 2 == 1) {
      NodeId a = b.AddNode(acct);
      b.AddEdgeUnchecked(a, like, liked_a);
      b.AddEdgeUnchecked(a, like, liked_b);
      NodeId p = b.AddNode(blog);
      b.AddEdgeUnchecked(a, post, p);
      b.AddEdgeUnchecked(p, contains, scam_kw);
      b.AddEdgeUnchecked(a, is_a, genuine_node);
    }
  }
  for (uint32_t i = 0; i < honest_accounts; ++i) {
    NodeId a = b.AddNode(acct);
    b.AddEdgeUnchecked(a, like, popular[rng.Uniform(popular.size())]);
    NodeId p = b.AddNode(blog);
    b.AddEdgeUnchecked(a, post, p);
    NodeId kw = b.AddNode(keyword);  // unique, harmless keyword
    b.AddEdgeUnchecked(p, contains, kw);
    // A tenth of honest accounts are manually verified: is_a -> genuine.
    // Under LCWA these are the "negative" cases for q = is_a(x, fake);
    // unverified accounts stay "unknown" and never hurt the confidence.
    if (rng.Bernoulli(0.1)) b.AddEdgeUnchecked(a, is_a, genuine_node);
  }
  return std::move(b).Build();
}

/// Q4 with k common liked blogs, built against `labels`.
Gpar MakeR4(const Interner& labels, uint32_t k) {
  Pattern p;
  PNodeId x = p.AddNode(labels.Lookup("acct"));
  PNodeId xp = p.AddNode(labels.Lookup("acct"));
  PNodeId y = p.AddNode(labels.Lookup("fake"));
  PNodeId pk = p.AddNode(labels.Lookup("blog"), k);
  PNodeId y1 = p.AddNode(labels.Lookup("blog"));
  PNodeId y2 = p.AddNode(labels.Lookup("blog"));
  PNodeId w = p.AddNode(labels.Lookup("keyword"));
  p.set_x(x);
  p.set_y(y);
  LabelId is_a = labels.Lookup("is_a");
  LabelId like = labels.Lookup("like");
  LabelId post = labels.Lookup("post");
  LabelId contains = labels.Lookup("contains");
  p.AddEdge(xp, is_a, y);
  p.AddEdge(x, like, pk);
  p.AddEdge(xp, like, pk);
  p.AddEdge(x, post, y1);
  p.AddEdge(xp, post, y2);
  p.AddEdge(y1, contains, w);
  p.AddEdge(y2, contains, w);
  return Gpar::Create(std::move(p), is_a).value();
}

}  // namespace

int main() {
  using namespace gpar;

  // --- Part 1: the paper's G2 fixture. -------------------------------------
  PaperG2 g2 = MakePaperG2();
  VF2Matcher m(g2.graph);
  QStats stats = ComputeQStats(m, g2.q);
  GparEval eval = EvaluateGpar(m, g2.r4, stats);
  std::printf("G2 (Fig. 2): supp(R4) = %llu — accounts matching the "
              "fake-ring pattern (paper: 3)\n",
              static_cast<unsigned long long>(eval.supp_r));
  for (NodeId v : {g2.acct1, g2.acct2, g2.acct3, g2.acct4}) {
    const char* cls = "unknown";
    switch (ClassifyLcwa(g2.graph, g2.q, v, stats)) {
      case LcwaCase::kPositive: cls = "confirmed fake"; break;
      case LcwaCase::kNegative: cls = "confirmed genuine"; break;
      case LcwaCase::kUnknown: cls = "unlabeled"; break;
    }
    std::printf("  acct%u: %s\n", v + 1, cls);
  }

  // --- Part 2: a bigger planted scenario. ----------------------------------
  Graph big = MakeAccountGraph(/*rings=*/6, /*ring_size=*/5,
                               /*honest_accounts=*/300, /*seed=*/17);
  std::printf("\nsynthetic account graph: %u nodes, %zu edges, 6 planted "
              "rings of 5 (two confirmed fakes each)\n",
              big.num_nodes(), big.num_edges());

  Gpar r4 = MakeR4(big.labels(), /*k=*/2);
  std::vector<Gpar> sigma{r4};
  EipOptions opt;
  opt.algorithm = EipAlgorithm::kMatch;
  opt.num_workers = 4;
  opt.eta = 1.0;
  auto result = IdentifyEntities(big, sigma, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "EIP failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("rule confidence on the big graph: %.3f\n",
              result->rule_evals[0].conf);
  std::printf("suspect accounts flagged: %zu "
              "(ring members sharing scam keywords with a confirmed fake)\n",
              result->entities.size());
  std::printf("expected: the ~30 ring members plus the few recovered "
              "accounts; plain honest\naccounts never match the pattern. "
              "High conf = the pattern is far likelier\namong confirmed "
              "fakes than among verified-genuine accounts.\n");
  return 0;
}
