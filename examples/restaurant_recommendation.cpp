// The paper's running example (Example 1 / Figures 1-3): the restaurant
// recommendation network G1, rule R1 ("same-city friends who share three
// French restaurants; if your friend visits a new one, so may you"), and
// the diversified rules R5-R8 of Fig. 3.
//
//   ./build/examples/restaurant_recommendation
//
// Reproduces on the fixture graph every number the paper derives in
// Examples 3, 5, 8, 9 and 10, then runs entity identification (EIP).

#include <cstdio>

#include "graph/paper_graphs.h"
#include "identify/eip.h"
#include "match/matcher.h"
#include "rule/diversity.h"
#include "rule/metrics.h"

int main() {
  using namespace gpar;
  PaperG1 g1 = MakePaperG1();
  const Interner& labels = g1.graph.labels();

  std::printf("G1: %u nodes, %zu edges — Fig. 2's restaurant network\n",
              g1.graph.num_nodes(), g1.graph.num_edges());

  VF2Matcher matcher(g1.graph);
  QStats stats = ComputeQStats(matcher, g1.q);
  std::printf("q(x,y) = visit(cust, French_restaurant): supp(q)=%llu, "
              "supp(~q)=%llu\n\n",
              static_cast<unsigned long long>(stats.supp_q),
              static_cast<unsigned long long>(stats.supp_qbar));

  struct Named {
    const char* name;
    const Gpar* rule;
  };
  for (const Named& n : {Named{"R1 (Q1 of Fig. 1a)", &g1.r1},
                         Named{"R5", &g1.r5},
                         Named{"R6", &g1.r6},
                         Named{"R7", &g1.r7},
                         Named{"R8", &g1.r8}}) {
    GparEval eval = EvaluateGpar(matcher, *n.rule, stats);
    std::printf("--- %s ---\n", n.name);
    std::printf("%s", n.rule->ToString(labels).c_str());
    std::printf("supp(R)=%llu  supp(Q)=%llu  conf=%.2f  matches:",
                static_cast<unsigned long long>(eval.supp_r),
                static_cast<unsigned long long>(eval.supp_q_ant), eval.conf);
    for (NodeId v : eval.pr_matches) std::printf(" cust%u", v + 1);
    std::printf("\n\n");
  }

  // Diversity (Example 8): R7 and R8 cover disjoint customer groups.
  GparEval e7 = EvaluateGpar(matcher, g1.r7, stats);
  GparEval e8 = EvaluateGpar(matcher, g1.r8, stats);
  double n_norm = static_cast<double>(stats.supp_q * stats.supp_qbar);
  std::printf("diff(R7, R8) = %.2f;  F({R7, R8}) = %.2f  (paper: 1.08)\n\n",
              JaccardDistance(e7.pr_matches, e8.pr_matches),
              ObjectiveF({e7.conf, e8.conf}, {&e7.pr_matches, &e8.pr_matches},
                         0.5, n_norm, 2));

  // Entity identification with the whole rule set at η = 0.5.
  std::vector<Gpar> sigma{g1.r1, g1.r5, g1.r6, g1.r7, g1.r8};
  EipOptions opt;
  opt.algorithm = EipAlgorithm::kMatch;
  opt.num_workers = 2;
  opt.eta = 0.5;
  auto result = IdentifyEntities(g1.graph, sigma, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "EIP failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Σ(x, G, η=0.5) — potential customers to target:");
  for (NodeId v : result->entities) std::printf(" cust%u", v + 1);
  std::printf("\n(cust5 appears: she matches the antecedents but has not "
              "visited a French\nrestaurant yet — exactly whom you want to "
              "send the coupon to.)\n");
  return 0;
}
