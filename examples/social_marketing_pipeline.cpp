// End-to-end social-media-marketing pipeline, the paper's headline use
// case, split the way Section 5 frames it — offline mining, online
// serving:
//   (1) mine diversified GPARs for an event q(x, y) with DMine;
//   (2) persist the graph and the mined rules as binary snapshots;
//   (3) load them into a long-lived serving session (`ServeSession`) and
//       answer identify requests as they "arrive" — including after live
//       edge updates — then A/B the same snapshot pair through a 2-shard
//       `ShardedRuleServer` deployment.
//
//   ./build/examples/social_marketing_pipeline
//
// Runs on a generated Pokec-like social network (users, follows, music /
// book / hobby preferences with planted community structure).

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "graph/generator.h"
#include "graph/graph_delta.h"
#include "graph/graph_snapshot.h"
#include "graph/stats.h"
#include "mine/dmine.h"
#include "rule/rule_snapshot.h"
#include "serve/rule_server.h"
#include "serve/sharded_rule_server.h"

int main() {
  using namespace gpar;

  // --- Data: a Pokec-like social network. ----------------------------------
  Graph g = MakePokecLike(/*scale=*/1, /*seed=*/2024);
  std::printf("social graph: %u nodes, %zu edges\n", g.num_nodes(),
              g.num_edges());

  // The event to market: the most popular like_music kind.
  LabelId user = g.labels().Lookup("user");
  LabelId like_music = g.labels().Lookup("like_music");
  Predicate q{user, like_music, kNoLabel};
  for (const EdgePatternStat& s : FrequentEdgePatterns(g)) {
    if (s.edge_label == like_music) {
      q.y_label = s.dst_label;
      break;
    }
  }
  std::printf("target event q(x, y) = like_music(user, %s)\n\n",
              g.labels().Name(q.y_label).c_str());

  // --- Stage 1 (offline): discover diversified GPARs (DMP). ----------------
  DmineOptions mine_opt;
  mine_opt.num_workers = 4;
  mine_opt.k = 4;
  mine_opt.d = 2;
  mine_opt.sigma = 8;
  mine_opt.lambda = 0.5;
  mine_opt.max_pattern_edges = 3;
  mine_opt.seed_edge_limit = 12;
  auto mined = Dmine(g, q, mine_opt);
  if (!mined.ok()) {
    std::fprintf(stderr, "DMine failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  std::printf("DMine: %zu rules accepted, top-%u diversified set "
              "(F = %.4f), %.2fs simulated parallel time\n",
              mined->stats.accepted, mine_opt.k, mined->objective,
              mined->times.SimulatedParallelSeconds());
  std::vector<RuleRecord> records;
  for (const auto& r : mined->topk) {
    std::printf("--- conf %.3f, supp %llu ---\n%s", r->conf,
                static_cast<unsigned long long>(r->supp),
                r->rule.ToString(g.labels()).c_str());
    records.push_back({r->rule, r->supp, r->conf});
  }
  if (records.empty()) {
    std::printf("no rules found — raise scale or lower sigma\n");
    return 0;
  }

  // --- Stage 2: persist the snapshot pair. ---------------------------------
  const std::string graph_snap = "social_graph.snap";
  const std::string rules_snap = "social_rules.snap";
  if (!WriteGraphSnapshotFile(g, graph_snap).ok() ||
      !WriteRuleSetSnapshotFile(records, g.labels(), rules_snap).ok()) {
    std::fprintf(stderr, "snapshot write failed\n");
    return 1;
  }
  std::printf("\nwrote %s + %s (binary, checksummed)\n", graph_snap.c_str(),
              rules_snap.c_str());

  // --- Stage 3 (online): load the pair into a serving session. -------------
  RuleServerOptions serve_opt;
  serve_opt.num_workers = 4;
  auto server = RuleServer::Load(graph_snap, rules_snap, serve_opt);
  if (!server.ok()) {
    std::fprintf(stderr, "RuleServer load failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  RuleServer& s = **server;  // speaks the ServeSession interface
  std::printf("RuleServer up: %zu rules, %zu candidate users, "
              "%zu plans + %zu sketches precomputed\n",
              s.rules().size(), s.candidates().size(), s.plans_prepared(),
              s.sketches_precomputed());

  // A full identification — the campaign audience at eta = 1.0.
  SessionRequest all_req;
  all_req.all_centers = true;
  all_req.eta = 1.0;
  auto audience = s.Query(all_req);
  if (!audience.ok()) {
    std::fprintf(stderr, "full identification failed: %s\n",
                 audience.status().ToString().c_str());
    return 1;
  }
  std::printf("\nfull identification: %zu potential customers at eta=1.0 "
              "(%.1f ms cold)\n",
              audience->entities.size(),
              audience->stats.latency_seconds * 1e3);

  // Online requests: batches of users "arriving" at the service.
  std::mt19937_64 rng(7);
  for (int batch = 0; batch < 3; ++batch) {
    SessionRequest req;
    for (int i = 0; i < 32; ++i) {
      req.centers.push_back(
          s.candidates()[rng() % s.candidates().size()]);
    }
    auto reply = s.Query(req);
    if (!reply.ok()) return 1;
    std::printf("request %d: %zu/%zu users matched >=1 rule "
                "[%llu hits, %llu probes, %.2f ms]\n",
                batch, reply->entities.size(), req.centers.size(),
                static_cast<unsigned long long>(reply->stats.cache_hits),
                static_cast<unsigned long long>(reply->stats.cache_probes),
                reply->stats.latency_seconds * 1e3);
  }

  // The graph is alive: new follow edges arrive as one typed, serializable
  // GraphDelta batch; only nearby cached answers are invalidated.
  const NodeId num_nodes = s.graph_snapshot()->num_nodes();
  GraphDelta delta;
  delta.inserts.reserve(5);
  LabelId follows = s.InternLabel("follows");
  for (int i = 0; i < 5; ++i) {
    delta.inserts.push_back({static_cast<NodeId>(rng() % num_nodes), follows,
                             static_cast<NodeId>(rng() % num_nodes)});
  }
  auto ds = s.ApplyDelta(delta);
  if (!ds.ok()) return 1;
  std::printf("\ndelta: +%zu follow edges -> %llu memberships invalidated, "
              "%llu sketches refreshed (%.2f ms)\n",
              ds->edges_inserted,
              static_cast<unsigned long long>(ds->memberships_invalidated),
              static_cast<unsigned long long>(ds->sketches_refreshed),
              ds->seconds * 1e3);

  auto refreshed = s.Query(all_req);
  if (!refreshed.ok()) return 1;
  std::printf("re-identification after delta: %zu customers "
              "(%.1f ms, %llu re-probes — the locality win)\n",
              refreshed->entities.size(),
              refreshed->stats.latency_seconds * 1e3,
              static_cast<unsigned long long>(refreshed->stats.cache_probes));

  // How many are *new* prospects (no like_music edge to the target yet)?
  std::shared_ptr<const Graph> live = s.graph_snapshot();
  size_t fresh = 0;
  for (NodeId v : refreshed->entities) {
    bool has = false;
    for (const AdjEntry& e : live->out_edges_labeled(v, q.edge_label)) {
      if (live->node_label(e.other) == q.y_label) {
        has = true;
        break;
      }
    }
    if (!has) ++fresh;
  }
  std::printf("of which %zu have not liked the target genre yet — the "
              "campaign audience.\n", fresh);

  // Churn cleanup: three of those follow edges turn out to be fake-account
  // activity and are deleted again — the non-monotone direction. Deletes
  // ride the same GraphDelta batch (a v2 wire frame) and are tolerant: a
  // delete naming an edge the graph lost already is counted, not fatal.
  GraphDelta cleanup;
  cleanup.sequence = delta.sequence + 1;
  for (size_t i = 0; i < 3 && i < delta.inserts.size(); ++i) {
    const EdgeInsert& e = delta.inserts[i];
    cleanup.deletes.push_back({e.src, e.label, e.dst});
  }
  auto cds = s.ApplyDelta(cleanup);
  if (!cds.ok()) return 1;
  std::printf("cleanup: -%zu fake follow edges (%zu missing) -> %llu "
              "memberships invalidated (%.2f ms)\n",
              cds->edges_deleted, cds->deletes_missing,
              static_cast<unsigned long long>(cds->memberships_invalidated),
              cds->seconds * 1e3);
  auto cleaned = s.Query(all_req);
  if (!cleaned.ok()) return 1;
  std::printf("re-identification after cleanup: %zu customers (%.1f ms)\n",
              cleaned->entities.size(),
              cleaned->stats.latency_seconds * 1e3);

  // --- Stage 4: the same session API, sharded. ------------------------------
  // Load the identical snapshot pair behind a 2-shard router, replay both
  // delta batches (shipped to the shards as serialized "GPARDLTA" bytes),
  // and confirm the sharded deployment identifies the same audience.
  ShardedRuleServerOptions shard_opt;
  shard_opt.num_shards = 2;
  shard_opt.shard_options = serve_opt;
  auto sharded = ShardedRuleServer::Load(graph_snap, rules_snap, shard_opt);
  if (!sharded.ok()) {
    std::fprintf(stderr, "ShardedRuleServer load failed: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }
  ShardedRuleServer& r = **sharded;
  for (uint32_t i = 0; i < r.num_shards(); ++i) {
    std::printf("shard %u: %zu owned centers, %zu view nodes\n", i,
                r.shard(i).candidates().size(),
                r.shard(i).view_members());
  }
  // Label dictionaries are append-only and both sessions loaded the same
  // snapshot, so interning here reproduces the id `delta` was built with.
  if (r.InternLabel("follows") != follows) {
    std::fprintf(stderr, "label dictionaries diverged\n");
    return 1;
  }
  auto shard_ds = r.ApplyDelta(delta);
  if (!shard_ds.ok()) {
    std::fprintf(stderr, "sharded ApplyDelta failed: %s\n",
                 shard_ds.status().ToString().c_str());
    return 1;
  }
  auto shard_cds = r.ApplyDelta(cleanup);
  if (!shard_cds.ok()) {
    std::fprintf(stderr, "sharded cleanup ApplyDelta failed: %s\n",
                 shard_cds.status().ToString().c_str());
    return 1;
  }
  auto shard_audience = r.Query(all_req);
  if (!shard_audience.ok()) {
    std::fprintf(stderr, "sharded Query failed: %s\n",
                 shard_audience.status().ToString().c_str());
    return 1;
  }
  std::printf("sharded re-identification: %zu customers (%llu wire bytes "
              "shipped) — %s the single-server answer.\n",
              shard_audience->entities.size(),
              static_cast<unsigned long long>(shard_ds->wire_bytes +
                                              shard_cds->wire_bytes),
              shard_audience->entities == cleaned->entities
                  ? "identical to"
                  : "MISMATCH vs");
  if (shard_audience->entities != cleaned->entities) return 1;

  std::remove(graph_snap.c_str());
  std::remove(rules_snap.c_str());
  return 0;
}
