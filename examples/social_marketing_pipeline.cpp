// End-to-end social-media-marketing pipeline, the paper's headline use
// case: (1) mine diversified GPARs for an event q(x, y) with DMine, then
// (2) apply them with Match to identify potential customers (EIP).
//
//   ./build/examples/social_marketing_pipeline
//
// Runs on a generated Pokec-like social network (users, follows, music /
// book / hobby preferences with planted community structure).

#include <cstdio>

#include "graph/generator.h"
#include "graph/stats.h"
#include "identify/eip.h"
#include "mine/dmine.h"

int main() {
  using namespace gpar;

  // --- Data: a Pokec-like social network. ----------------------------------
  Graph g = MakePokecLike(/*scale=*/1, /*seed=*/2024);
  std::printf("social graph: %u nodes, %zu edges\n", g.num_nodes(),
              g.num_edges());

  // The event to market: the most popular like_music kind.
  LabelId user = g.labels().Lookup("user");
  LabelId like_music = g.labels().Lookup("like_music");
  Predicate q{user, like_music, kNoLabel};
  for (const EdgePatternStat& s : FrequentEdgePatterns(g)) {
    if (s.edge_label == like_music) {
      q.y_label = s.dst_label;
      break;
    }
  }
  std::printf("target event q(x, y) = like_music(user, %s)\n\n",
              g.labels().Name(q.y_label).c_str());

  // --- Stage 1: discover diversified GPARs (DMP). --------------------------
  DmineOptions mine_opt;
  mine_opt.num_workers = 4;
  mine_opt.k = 4;
  mine_opt.d = 2;
  mine_opt.sigma = 8;
  mine_opt.lambda = 0.5;
  mine_opt.max_pattern_edges = 3;
  mine_opt.seed_edge_limit = 12;
  auto mined = Dmine(g, q, mine_opt);
  if (!mined.ok()) {
    std::fprintf(stderr, "DMine failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  std::printf("DMine: %zu rules accepted, top-%u diversified set "
              "(F = %.4f), %.2fs simulated parallel time\n",
              mined->stats.accepted, mine_opt.k, mined->objective,
              mined->times.SimulatedParallelSeconds());
  std::vector<Gpar> sigma;
  for (const auto& r : mined->topk) {
    std::printf("--- conf %.3f, supp %llu ---\n%s", r->conf,
                static_cast<unsigned long long>(r->supp),
                r->rule.ToString(g.labels()).c_str());
    sigma.push_back(r->rule);
  }
  if (sigma.empty()) {
    std::printf("no rules found — raise scale or lower sigma\n");
    return 0;
  }

  // --- Stage 2: identify potential customers (EIP). ------------------------
  EipOptions eip_opt;
  eip_opt.algorithm = EipAlgorithm::kMatch;
  eip_opt.num_workers = 4;
  eip_opt.eta = 1.0;  // demand rules at least as predictive as independence
  auto found = IdentifyEntities(g, sigma, eip_opt);
  if (!found.ok()) {
    std::fprintf(stderr, "EIP failed: %s\n",
                 found.status().ToString().c_str());
    return 1;
  }
  std::printf("\nMatch: %zu potential customers at eta=%.1f "
              "(%.2fs simulated parallel time)\n",
              found->entities.size(), eip_opt.eta,
              found->times.SimulatedParallelSeconds());

  // How many are *new* prospects (no like_music edge to the target yet)?
  size_t fresh = 0;
  for (NodeId v : found->entities) {
    bool has = false;
    for (const AdjEntry& e : g.out_edges_labeled(v, q.edge_label)) {
      if (g.node_label(e.other) == q.y_label) {
        has = true;
        break;
      }
    }
    if (!has) ++fresh;
  }
  std::printf("of which %zu have not liked the target genre yet — the "
              "campaign audience.\n", fresh);
  return 0;
}
